"""Lowering of quantized graphs into integer-only execution plans.

:func:`lower_graph` walks a quantized :class:`~repro.graph.ir.GraphIR`
(after ``bn_fold`` / ``avgpool_to_dwconv`` and the quantization pass) and
emits an :class:`ExecutionPlan`: a linear sequence of integer steps whose
runtime values are quantization *codes* rather than fake-quantized floats.
Every tensor in the plan carries a :class:`ValueMeta` — the value it stands
for is ``codes * 2^-fraction / divisor`` — and every layer boundary is a
power-of-2 requantization shift (Eq. 16), so the whole network runs in
integer arithmetic exactly as the paper's fixed-point deployment does.

``ExecutionPlan.bind(input_shape)`` turns the symbolic plan into a
:class:`CompiledEngine`: shapes are inferred, weight matrices are staged for
the accumulation backend, worst-case accumulator magnitudes are verified
(exactness + int32-MAC fit), and a linear-scan register allocator assigns
every step an output buffer from a reuse pool so the steady-state forward
pass allocates nothing.

The plan is *bit-exact* against the float fake-quant simulation: the parity
suite (:mod:`repro.engine.parity`) asserts identical output codes for every
model in the registry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..graph.ir import GraphIR, Node, OpKind
from ..nn import GlobalAvgPool2d, MaxPool2d
from ..quant.fixed_point import code_dtype, requantize_codes
from ..quant.qmodules import (
    ActivationQuantizer,
    QuantizedAdd,
    QuantizedConcat,
    QuantizedConv2d,
    QuantizedInput,
    QuantizedLeakyReLU,
    QuantizedLinear,
)
from ..quant.tqt import TQTQuantizer
from .counters import PIPELINE_COUNTERS
from .kernels import (
    INT32_ACCUMULATOR_LIMIT,
    ConvGeometry,
    _normalize_pair,
    assert_exact_accumulation,
    conv_accumulate,
    depthwise_accumulate,
    matmul_accumulate,
    max_pool_codes,
)

__all__ = [
    "PlanError",
    "QuantStage",
    "ValueMeta",
    "ExecutionPlan",
    "CompiledEngine",
    "EngineOutput",
    "StepTiming",
    "PlanProfile",
    "lower_graph",
]


class PlanError(RuntimeError):
    """The graph cannot be lowered to an integer-only plan."""


# ---------------------------------------------------------------------- #
# Quantizer introspection
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class QuantStage:
    """One requantization stage: target fractional length plus clip range."""

    fraction: int
    qmin: int
    qmax: int
    bits: int

    @property
    def max_abs(self) -> int:
        return max(abs(self.qmin), abs(self.qmax))


def _require_tqt(module, what: str) -> TQTQuantizer:
    if not isinstance(module, TQTQuantizer):
        raise PlanError(f"{what}: integer lowering requires TQT quantizers, "
                        f"got {type(module).__name__}")
    if not module.config.power_of_2:
        raise PlanError(f"{what}: integer lowering requires power-of-2 scale factors")
    if module.channel_axis is not None:
        raise PlanError(f"{what}: per-channel thresholds are not supported by the engine")
    return module


def _stage_from(quantizer: TQTQuantizer) -> QuantStage:
    fraction = int(np.asarray(quantizer.fractional_length).reshape(-1)[0])
    config = quantizer.config
    return QuantStage(fraction=fraction, qmin=config.qmin, qmax=config.qmax,
                      bits=config.bits)


def _output_stage(quantizer: ActivationQuantizer | None, what: str) -> QuantStage | None:
    """Stage for an output/input activation quantizer; ``None`` when bypassed."""
    if quantizer is None or quantizer.mode == "bypass":
        return None
    if quantizer.mode != "quantize":
        raise PlanError(f"{what}: quantizer is in {quantizer.mode!r} mode; "
                        f"finish calibration before lowering")
    return _stage_from(_require_tqt(quantizer.impl, what))


def _internal_stage(quantizer: ActivationQuantizer | None, what: str) -> QuantStage | None:
    """Stage for a compute layer's 16-bit accumulator emulation.

    Mirrors the gating in ``QuantizedConv2d.forward``: in quantize mode the
    stage only applies once a threshold has been calibrated.
    """
    if quantizer is None or quantizer.mode == "bypass":
        return None
    if quantizer.mode != "quantize":
        raise PlanError(f"{what}: quantizer is in {quantizer.mode!r} mode; "
                        f"finish calibration before lowering")
    impl = _require_tqt(quantizer.impl, what)
    if not getattr(impl, "calibrated", True):
        return None
    return _stage_from(impl)


@dataclass(frozen=True)
class ValueMeta:
    """Meaning of an integer buffer: ``value = codes * 2^-fraction / divisor``.

    ``max_abs`` bounds the code magnitude and feeds the accumulator range
    checks (exact float64 lanes, int32 MAC fit).
    """

    fraction: int
    divisor: int = 1
    max_abs: int = 0


def _relu6_bound(fraction: int, divisor: int, where: str) -> float:
    """Upper clip bound of ReLU6 expressed in the code domain."""
    bound = 6.0 * divisor * (2.0 ** fraction)
    if bound != np.floor(bound):
        raise PlanError(f"{where}: ReLU6 clip at 6.0 does not land on the integer grid "
                        f"(fraction {fraction}, divisor {divisor})")
    return bound


def _apply_activation(acc: np.ndarray, activation: str, bound: float | None) -> None:
    if activation == "relu":
        np.maximum(acc, 0.0, out=acc)
    elif activation == "relu6":
        np.clip(acc, 0.0, bound, out=acc)


# ---------------------------------------------------------------------- #
# Bind-time infrastructure
# ---------------------------------------------------------------------- #
class _BufferPool:
    """Exact-shape free-list allocator used by the linear-scan binder."""

    def __init__(self) -> None:
        self._free: dict[tuple, list[np.ndarray]] = {}
        self.buffers_created = 0
        self.bytes_created = 0

    def acquire(self, shape: tuple[int, ...], dtype=np.float64,
                fresh: bool = False) -> np.ndarray:
        """Hand out a buffer; ``fresh=True`` bypasses the free list.

        A recycled buffer may double as an earlier step's output storage
        (written every forward pass), which is fine for storage that is
        fully overwritten before each use but fatal for buffers that rely
        on contents persisting across passes (zero-padded borders).
        """
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        if not fresh:
            free = self._free.get((shape, dtype))
            if free:
                return free.pop()
        self.buffers_created += 1
        buffer = np.empty(shape, dtype=dtype)
        self.bytes_created += buffer.nbytes
        return buffer

    def release(self, buffer: np.ndarray) -> None:
        self._free.setdefault((buffer.shape, buffer.dtype), []).append(buffer)


@dataclass
class _BoundValue:
    """A node's bound tensor: its runtime slot, shape and meta."""

    slot: int
    shape: tuple[int, ...]
    meta: ValueMeta


class _BindContext:
    def __init__(self, pool: _BufferPool, accumulate: str,
                 share_scratch: bool = True) -> None:
        self.pool = pool
        self.accumulate = accumulate
        self._scratch: dict | None = {} if share_scratch else None

    def scratch(self, key, shape: tuple[int, ...], dtype=np.float64,
                zero: bool = False) -> np.ndarray:
        """Persistent per-engine scratch buffer, shared across steps by key.

        Steps run sequentially and fully consume their scratch (columns,
        accumulators, cast staging) within one ``run`` call, so steps whose
        scratch agrees on ``(key, shape, dtype)`` can share a single buffer.
        ``zero`` buffers are zero-filled at creation and allocated *fresh*
        (never from the free list): their zeros must survive across passes,
        so they can never alias a recycled step-output buffer.  Sharers of a
        zeroed buffer must key on everything that determines which region
        they overwrite (e.g. the padded-input interior).  When sharing is
        disabled (branch-parallel execution), every request gets a private
        buffer.
        """
        shape = tuple(int(s) for s in shape)
        if self._scratch is None:
            buffer = self.pool.acquire(shape, dtype, fresh=zero)
            if zero:
                buffer[...] = 0
            return buffer
        full_key = (key, shape, np.dtype(dtype))
        buffer = self._scratch.get(full_key)
        if buffer is None:
            buffer = self.pool.acquire(shape, dtype, fresh=zero)
            if zero:
                buffer[...] = 0
            self._scratch[full_key] = buffer
        return buffer


# ---------------------------------------------------------------------- #
# Symbolic steps
# ---------------------------------------------------------------------- #
class _Step:
    """One symbolic plan step (per graph node)."""

    #: alias steps reuse their input's storage instead of acquiring a buffer
    alias = False

    def __init__(self, name: str, op: str, inputs: list[str]) -> None:
        self.name = name
        self.op = op
        self.inputs = inputs

    def describe(self) -> str:
        return ""

    # Subclasses implement bind(values, ctx) -> (BoundStep, shape, meta).


class _BoundStep:
    """A bound step: concrete buffers, constants and a ``run(env)`` method."""

    def __init__(self, step: _Step, input_slots: list[int], output_slot: int,
                 output: np.ndarray | None) -> None:
        self.step = step
        self.input_slots = input_slots
        self.output_slot = output_slot
        self.output = output

    def run(self, env: list) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class _QuantizeInputStep(_Step):
    def __init__(self, name: str, inputs: list[str], stage: QuantStage) -> None:
        super().__init__(name, OpKind.QUANTIZE, inputs)
        self.stage = stage

    def describe(self) -> str:
        return f"q{self.stage.bits} f={self.stage.fraction}"

    def bind(self, values, ctx):
        (x,) = values
        out = ctx.pool.acquire(x.shape)
        stage = self.stage

        class Bound(_BoundStep):
            def run(self, env):
                requantize_codes(env[self.input_slots[0]], -stage.fraction,
                                 stage.qmin, stage.qmax, out=self.output)
                env[self.output_slot] = self.output

        meta = ValueMeta(fraction=stage.fraction, divisor=1, max_abs=stage.max_abs)
        return Bound, x.shape, meta, out


class _ComputeStep(_Step):
    """Shared bias/activation/requantization tail of conv and linear steps."""

    def __init__(self, name: str, op: str, inputs: list[str], *,
                 weight_codes: np.ndarray, weight_fraction: int,
                 bias_codes: np.ndarray | None, bias_fraction: int,
                 internal: QuantStage | None, activation: str,
                 output: QuantStage | None) -> None:
        super().__init__(name, op, inputs)
        self.weight_codes = weight_codes
        self.weight_fraction = weight_fraction
        self.bias_codes = bias_codes
        self.bias_fraction = bias_fraction
        self.internal = internal
        self.activation = activation
        self.output_stage = output
        # Filled in at bind time, surfaced by the manifest.
        self.accumulator_bound: int = 0
        self.fits_int32: bool = True

    def describe(self) -> str:
        parts = [f"w{self.weight_codes.dtype.itemsize * 8}({self.weight_codes.dtype}) "
                 f"f_w={self.weight_fraction}"]
        if self.bias_codes is not None:
            parts.append(f"bias f_b={self.bias_fraction}")
        if self.internal is not None:
            parts.append(f"acc→q{self.internal.bits}")
        if self.activation != "none":
            parts.append(self.activation)
        if self.output_stage is not None:
            parts.append(f"out→q{self.output_stage.bits} f={self.output_stage.fraction}")
        return ", ".join(parts)

    def _tail_constants(self, in_meta: ValueMeta, k_per_output: int,
                        weight_max_abs: int) -> dict:
        """Resolve the post-accumulation pipeline once the input meta is known."""
        acc_fraction = in_meta.fraction + self.weight_fraction
        divisor = in_meta.divisor
        acc_bound = k_per_output * in_meta.max_abs * weight_max_abs

        common_fraction = acc_fraction
        bias_addend = None
        if self.bias_codes is not None:
            common_fraction = max(acc_fraction, self.bias_fraction)
            acc_shift_up = 2.0 ** (common_fraction - acc_fraction)
            bias_addend = (self.bias_codes.astype(np.float64)
                           * divisor * 2.0 ** (common_fraction - self.bias_fraction))
            acc_bound = int(acc_bound * acc_shift_up
                            + np.max(np.abs(bias_addend), initial=0.0))
        else:
            acc_shift_up = 1.0

        assert_exact_accumulation(acc_bound, self.name)
        self.accumulator_bound = acc_bound
        self.fits_int32 = acc_bound < INT32_ACCUMULATOR_LIMIT

        # Stage the activation / requantization chain.
        if self.internal is not None:
            internal_shift = common_fraction - self.internal.fraction
            act_fraction, act_divisor = self.internal.fraction, 1
            act_max_abs = self.internal.max_abs
        else:
            internal_shift = None
            act_fraction, act_divisor = common_fraction, divisor
            act_max_abs = acc_bound

        relu6_bound = (_relu6_bound(act_fraction, act_divisor, self.name)
                       if self.activation == "relu6" else None)

        if self.output_stage is not None:
            output_shift = act_fraction - self.output_stage.fraction
            out_meta = ValueMeta(fraction=self.output_stage.fraction, divisor=1,
                                 max_abs=self.output_stage.max_abs)
        else:
            output_shift = None
            out_meta = ValueMeta(fraction=act_fraction, divisor=act_divisor,
                                 max_abs=act_max_abs)
        return dict(acc_shift_up=acc_shift_up, bias_addend=bias_addend,
                    internal_shift=internal_shift, internal=self.internal,
                    divisor=divisor, activation=self.activation,
                    relu6_bound=relu6_bound, output_shift=output_shift,
                    output_stage=self.output_stage, out_meta=out_meta,
                    acc_bound=acc_bound)


def _run_compute_tail(acc: np.ndarray, out: np.ndarray, c: dict) -> None:
    """Bias add, 16-bit accumulator stage, activation and output shift."""
    if c["bias_addend"] is not None:
        if c["acc_shift_up"] != 1.0:
            np.multiply(acc, c["acc_shift_up"], out=acc)
        acc += c["bias_addend"]
    divisor = c["divisor"]
    if c["internal_shift"] is not None:
        stage = c["internal"]
        requantize_codes(acc, c["internal_shift"], stage.qmin, stage.qmax,
                         divisor=divisor, out=acc)
        divisor = 1
    _apply_activation(acc, c["activation"], c["relu6_bound"])
    if c["output_shift"] is not None:
        stage = c["output_stage"]
        requantize_codes(acc, c["output_shift"], stage.qmin, stage.qmax,
                         divisor=divisor, out=out)
    else:
        np.copyto(out, acc)


class _ConvStep(_ComputeStep):
    def __init__(self, name: str, inputs: list[str], layer: QuantizedConv2d, **kwargs) -> None:
        super().__init__(name, OpKind.QUANT_CONV, inputs, **kwargs)
        conv = layer.conv
        self.out_channels = conv.out_channels
        self.kernel_size = conv.kernel_size
        self.stride = conv.stride
        self.padding = conv.padding
        self.groups = conv.groups

    def bind(self, values, ctx):
        (x,) = values
        n, c_in, h, w = x.shape
        geometry = ConvGeometry.from_module(n, c_in, h, w, self.out_channels,
                                            self.kernel_size, self.stride, self.padding,
                                            self.groups)
        g = self.groups
        k = (c_in // g) * geometry.kernel[0] * geometry.kernel[1]
        image = np.empty(geometry.output_shape)
        constants = self._tail_constants(
            x.meta, k_per_output=k,
            weight_max_abs=int(np.max(np.abs(self.weight_codes), initial=0)),
        )
        if constants["bias_addend"] is not None:
            constants["bias_addend"] = constants["bias_addend"].reshape(1, -1, 1, 1)
        out = ctx.pool.acquire(geometry.output_shape)
        mode = ctx.accumulate

        if geometry.is_depthwise:
            weight = self.weight_codes.reshape(g, *geometry.kernel).astype(np.float64)
            probe = geometry.windows(np.zeros((n, c_in, h, w)))
            path = np.einsum_path("nchwij,cij->nchw", probe, weight, optimize=True)[0]

            class Bound(_BoundStep):
                def run(self, env):
                    depthwise_accumulate(geometry, env[self.input_slots[0]], weight,
                                         image, path, mode=mode)
                    _run_compute_tail(image, self.output, constants)
                    env[self.output_slot] = self.output
        else:
            weight_t = np.ascontiguousarray(
                self.weight_codes.reshape(g, self.out_channels // g, k)
                .transpose(0, 2, 1).astype(np.float64)
            )
            acc = np.empty((g, n * geometry.out_height * geometry.out_width,
                            self.out_channels // g))

            class Bound(_BoundStep):
                def run(self, env):
                    conv_accumulate(geometry, env[self.input_slots[0]], weight_t, acc,
                                    image, mode=mode)
                    _run_compute_tail(image, self.output, constants)
                    env[self.output_slot] = self.output

        return Bound, geometry.output_shape, constants["out_meta"], out


class _LinearStep(_ComputeStep):
    def __init__(self, name: str, inputs: list[str], layer: QuantizedLinear, **kwargs) -> None:
        super().__init__(name, OpKind.QUANT_LINEAR, inputs, **kwargs)
        self.out_features = layer.linear.out_features
        self.in_features = layer.linear.in_features

    def bind(self, values, ctx):
        (x,) = values
        if len(x.shape) != 2 or x.shape[1] != self.in_features:
            raise PlanError(f"{self.name}: expected input (N, {self.in_features}), "
                            f"got {x.shape}")
        n = x.shape[0]
        weight_t = np.ascontiguousarray(self.weight_codes.T.astype(np.float64))
        acc = np.empty((n, self.out_features))
        constants = self._tail_constants(
            x.meta, k_per_output=self.in_features,
            weight_max_abs=int(np.max(np.abs(self.weight_codes), initial=0)),
        )
        if constants["bias_addend"] is not None:
            constants["bias_addend"] = constants["bias_addend"].reshape(1, -1)
        out = ctx.pool.acquire((n, self.out_features))
        mode = ctx.accumulate

        class Bound(_BoundStep):
            def run(self, env):
                matmul_accumulate(env[self.input_slots[0]], weight_t, acc, mode=mode)
                _run_compute_tail(acc, self.output, constants)
                env[self.output_slot] = self.output

        return Bound, (n, self.out_features), constants["out_meta"], out


class _AddStep(_Step):
    def __init__(self, name: str, inputs: list[str], shared: QuantStage,
                 activation: str, output: QuantStage | None) -> None:
        super().__init__(name, OpKind.QUANT_ADD, inputs)
        self.shared = shared
        self.activation = activation
        self.output_stage = output

    def describe(self) -> str:
        out = (f"out→q{self.output_stage.bits} f={self.output_stage.fraction}"
               if self.output_stage else "no output stage")
        return f"merge f={self.shared.fraction}, {self.activation}, {out}"

    def bind(self, values, ctx):
        a, b = values
        if a.shape != b.shape:
            raise PlanError(f"{self.name}: eltwise-add inputs disagree on shape "
                            f"{a.shape} vs {b.shape}")
        shared, activation, output_stage = self.shared, self.activation, self.output_stage
        shifts = [(v.meta.fraction - shared.fraction, v.meta.divisor) for v in (a, b)]
        relu6_bound = (_relu6_bound(shared.fraction, 1, self.name)
                       if activation == "relu6" else None)
        scratch = np.empty(a.shape)
        out = ctx.pool.acquire(a.shape)
        if output_stage is not None:
            output_shift = shared.fraction - output_stage.fraction
            meta = ValueMeta(fraction=output_stage.fraction, divisor=1,
                             max_abs=output_stage.max_abs)
        else:
            output_shift = None
            meta = ValueMeta(fraction=shared.fraction, divisor=1,
                             max_abs=2 * shared.max_abs)

        class Bound(_BoundStep):
            def run(self, env):
                requantize_codes(env[self.input_slots[0]], shifts[0][0], shared.qmin,
                                 shared.qmax, divisor=shifts[0][1], out=scratch)
                requantize_codes(env[self.input_slots[1]], shifts[1][0], shared.qmin,
                                 shared.qmax, divisor=shifts[1][1], out=self.output)
                np.add(scratch, self.output, out=self.output)
                _apply_activation(self.output, activation, relu6_bound)
                if output_shift is not None:
                    requantize_codes(self.output, output_shift, output_stage.qmin,
                                     output_stage.qmax, out=self.output)
                env[self.output_slot] = self.output

        return Bound, a.shape, meta, out


class _ConcatStep(_Step):
    def __init__(self, name: str, inputs: list[str], shared: QuantStage, axis: int) -> None:
        super().__init__(name, OpKind.QUANT_CONCAT, inputs)
        self.shared = shared
        self.axis = axis

    def describe(self) -> str:
        return f"merge f={self.shared.fraction}, axis={self.axis}"

    def bind(self, values, ctx):
        axis, shared = self.axis, self.shared
        base = list(values[0].shape)
        for v in values[1:]:
            other = list(v.shape)
            if other[:axis] + other[axis + 1:] != base[:axis] + base[axis + 1:]:
                raise PlanError(f"{self.name}: concat inputs disagree off-axis")
        sizes = [v.shape[axis] for v in values]
        out_shape = tuple(base[:axis] + [sum(sizes)] + base[axis + 1:])
        shifts = [(v.meta.fraction - shared.fraction, v.meta.divisor) for v in values]
        offsets = np.cumsum([0] + sizes)
        slices = [tuple([slice(None)] * axis + [slice(int(offsets[i]), int(offsets[i + 1]))])
                  for i in range(len(sizes))]
        out = ctx.pool.acquire(out_shape)
        meta = ValueMeta(fraction=shared.fraction, divisor=1, max_abs=shared.max_abs)

        class Bound(_BoundStep):
            def run(self, env):
                for slot, (shift, divisor), region in zip(self.input_slots, shifts, slices):
                    requantize_codes(env[slot], shift, shared.qmin, shared.qmax,
                                     divisor=divisor, out=self.output[region])
                env[self.output_slot] = self.output

        return Bound, out_shape, meta, out


class _LeakyReLUStep(_Step):
    def __init__(self, name: str, inputs: list[str], internal: QuantStage,
                 alpha_code: int, alpha_fraction: int, output: QuantStage | None) -> None:
        super().__init__(name, OpKind.QUANT_LEAKY_RELU, inputs)
        self.internal = internal
        self.alpha_code = alpha_code
        self.alpha_fraction = alpha_fraction
        self.output_stage = output

    def describe(self) -> str:
        return (f"alpha={self.alpha_code}·2^-{self.alpha_fraction}, "
                f"internal q{self.internal.bits} f={self.internal.fraction}")

    def bind(self, values, ctx):
        (x,) = values
        internal, output_stage = self.internal, self.output_stage
        alpha_code, alpha_fraction = float(self.alpha_code), self.alpha_fraction
        input_shift = x.meta.fraction - internal.fraction
        input_divisor = x.meta.divisor
        x16 = np.empty(x.shape)
        scaled = np.empty(x.shape)
        out = ctx.pool.acquire(x.shape)
        if output_stage is not None:
            output_shift = internal.fraction - output_stage.fraction
            meta = ValueMeta(fraction=output_stage.fraction, divisor=1,
                             max_abs=output_stage.max_abs)
        else:
            output_shift = None
            meta = ValueMeta(fraction=internal.fraction, divisor=1,
                             max_abs=internal.max_abs)

        class Bound(_BoundStep):
            def run(self, env):
                requantize_codes(env[self.input_slots[0]], input_shift, internal.qmin,
                                 internal.qmax, divisor=input_divisor, out=x16)
                np.multiply(x16, alpha_code, out=scaled)
                requantize_codes(scaled, alpha_fraction, internal.qmin, internal.qmax,
                                 out=scaled)
                np.maximum(x16, scaled, out=scaled)
                if output_shift is not None:
                    requantize_codes(scaled, output_shift, output_stage.qmin,
                                     output_stage.qmax, out=self.output)
                else:
                    np.copyto(self.output, scaled)
                env[self.output_slot] = self.output

        return Bound, x.shape, meta, out


class _MaxPoolStep(_Step):
    def __init__(self, name: str, inputs: list[str], module: MaxPool2d) -> None:
        super().__init__(name, OpKind.MAXPOOL, inputs)
        self.kernel = _normalize_pair(module.kernel_size)
        self.stride = _normalize_pair(module.stride if module.stride is not None
                                      else module.kernel_size)
        self.padding = _normalize_pair(module.padding)

    def describe(self) -> str:
        return f"kernel={self.kernel}, stride={self.stride}"

    def bind(self, values, ctx):
        (x,) = values
        n, c, h, w = x.shape
        from ..autograd.conv import conv_output_size

        oh = conv_output_size(h, self.kernel[0], self.stride[0], self.padding[0])
        ow = conv_output_size(w, self.kernel[1], self.stride[1], self.padding[1])
        padded = None
        if self.padding[0] or self.padding[1]:
            padded = np.zeros((n, c, h + 2 * self.padding[0], w + 2 * self.padding[1]))
        kernel, stride, padding = self.kernel, self.stride, self.padding
        out_shape = (n, c, oh, ow)
        out = ctx.pool.acquire(out_shape)

        class Bound(_BoundStep):
            def run(self, env):
                max_pool_codes(env[self.input_slots[0]], kernel, stride, padding,
                               padded, self.output)
                env[self.output_slot] = self.output

        return Bound, out_shape, x.meta, out


class _GlobalAvgPoolStep(_Step):
    def __init__(self, name: str, inputs: list[str], keepdims: bool) -> None:
        super().__init__(name, OpKind.GLOBAL_AVGPOOL, inputs)
        self.keepdims = keepdims

    def describe(self) -> str:
        return "sum; divisor *= H*W"

    def bind(self, values, ctx):
        (x,) = values
        n, c, h, w = x.shape
        keepdims = self.keepdims
        out_shape = (n, c, 1, 1) if keepdims else (n, c)
        divisor = x.meta.divisor * h * w
        if divisor & (divisor - 1):
            # The fake-quant simulation rounds the mean *before* the next
            # layer accumulates while the engine divides *after*; the two
            # orders agree bit-for-bit only when the division is exact.
            raise PlanError(
                f"{self.name}: global-avgpool window {h}x{w} gives divisor {divisor}, "
                f"which is not a power of two — bit-exactness against the fake-quant "
                f"simulation cannot be guaranteed (use input sizes whose pooled "
                f"spatial extent is a power of two)"
            )
        out = ctx.pool.acquire(out_shape)
        meta = ValueMeta(fraction=x.meta.fraction, divisor=divisor,
                         max_abs=x.meta.max_abs * h * w)

        class Bound(_BoundStep):
            def run(self, env):
                np.sum(env[self.input_slots[0]], axis=(2, 3), keepdims=keepdims,
                       out=self.output)
                env[self.output_slot] = self.output

        return Bound, out_shape, meta, out


class _ActivationOnlyStep(_Step):
    """Standalone (unfused) ReLU / ReLU6 on codes."""

    def __init__(self, name: str, op: str, inputs: list[str]) -> None:
        super().__init__(name, op, inputs)

    def bind(self, values, ctx):
        (x,) = values
        bound = (_relu6_bound(x.meta.fraction, x.meta.divisor, self.name)
                 if self.op == OpKind.RELU6 else None)
        activation = "relu6" if self.op == OpKind.RELU6 else "relu"
        out = ctx.pool.acquire(x.shape)
        meta = ValueMeta(fraction=x.meta.fraction, divisor=x.meta.divisor,
                         max_abs=x.meta.max_abs)

        class Bound(_BoundStep):
            def run(self, env):
                np.copyto(self.output, env[self.input_slots[0]])
                _apply_activation(self.output, activation, bound)
                env[self.output_slot] = self.output

        return Bound, x.shape, meta, out


class _ReshapeStep(_Step):
    """Flatten / identity / dropout: a view over the producer's storage."""

    alias = True

    def __init__(self, name: str, op: str, inputs: list[str], start_dim: int | None) -> None:
        super().__init__(name, op, inputs)
        self.start_dim = start_dim  # None = identity

    def describe(self) -> str:
        return "view" if self.start_dim is None else f"flatten(start_dim={self.start_dim})"

    def bind(self, values, ctx):
        (x,) = values
        if self.start_dim is None:
            out_shape = x.shape
        else:
            lead = x.shape[:self.start_dim]
            tail = int(np.prod(x.shape[self.start_dim:], dtype=np.int64)) \
                if len(x.shape) > self.start_dim else 1
            out_shape = tuple(lead) + (tail,)
        shape = out_shape

        class Bound(_BoundStep):
            def run(self, env):
                env[self.output_slot] = env[self.input_slots[0]].reshape(shape)

        return Bound, out_shape, x.meta, None


# ---------------------------------------------------------------------- #
# Lowering
# ---------------------------------------------------------------------- #
def _lower_conv(node: Node) -> _Step:
    layer = node.module
    weight_quant = _require_tqt(layer.weight_quantizer, f"{node.name}.weight")
    weight_codes = weight_quant.quantize_to_integers(layer.conv.weight.data).astype(
        code_dtype(weight_quant.config.bits))
    kwargs = _compute_kwargs(node, layer, layer.conv.bias, layer.bias_quantizer,
                             layer.internal_quantizer)
    return _ConvStep(node.name, list(node.inputs), layer,
                     weight_codes=weight_codes,
                     weight_fraction=_stage_from(weight_quant).fraction, **kwargs)


def _lower_linear(node: Node) -> _Step:
    layer = node.module
    weight_quant = _require_tqt(layer.weight_quantizer, f"{node.name}.weight")
    weight_codes = weight_quant.quantize_to_integers(layer.linear.weight.data).astype(
        code_dtype(weight_quant.config.bits))
    kwargs = _compute_kwargs(node, layer, layer.linear.bias, layer.bias_quantizer, None)
    return _LinearStep(node.name, list(node.inputs), layer,
                       weight_codes=weight_codes,
                       weight_fraction=_stage_from(weight_quant).fraction, **kwargs)


def _compute_kwargs(node: Node, layer, bias, bias_quantizer, internal_quantizer) -> dict:
    bias_codes = None
    bias_fraction = 0
    if bias is not None:
        if bias_quantizer is None:
            raise PlanError(f"{node.name}: float bias without a bias quantizer cannot "
                            f"be lowered to integer arithmetic")
        bias_quant = _require_tqt(bias_quantizer, f"{node.name}.bias")
        codes = bias_quant.quantize_to_integers(bias.data)
        if np.any(codes):
            bias_codes = codes.astype(np.int64)
            bias_fraction = _stage_from(bias_quant).fraction
    return dict(
        bias_codes=bias_codes,
        bias_fraction=bias_fraction,
        internal=_internal_stage(internal_quantizer, f"{node.name}.acc"),
        activation=layer.activation,
        output=_output_stage(layer.output_quantizer, f"{node.name}.out"),
    )


def _lower_node(node: Node) -> _Step | None:
    module = node.module
    if node.op == OpKind.QUANTIZE:
        if not isinstance(module, QuantizedInput):
            raise PlanError(f"{node.name}: quantize node without a QuantizedInput module")
        stage = _output_stage(module.quantizer, f"{node.name}.in")
        if stage is None:
            raise PlanError(f"{node.name}: bypassed input quantizer cannot be lowered")
        return _QuantizeInputStep(node.name, list(node.inputs), stage)
    if node.op == OpKind.QUANT_CONV and isinstance(module, QuantizedConv2d):
        return _lower_conv(node)
    if node.op == OpKind.QUANT_LINEAR and isinstance(module, QuantizedLinear):
        return _lower_linear(node)
    if node.op == OpKind.QUANT_ADD and isinstance(module, QuantizedAdd):
        shared = _output_stage(module.input_quantizer, f"{node.name}.in")
        if shared is None:
            raise PlanError(f"{node.name}: bypassed add input quantizer")
        return _AddStep(node.name, list(node.inputs), shared, module.activation,
                        _output_stage(module.output_quantizer, f"{node.name}.out"))
    if node.op == OpKind.QUANT_CONCAT and isinstance(module, QuantizedConcat):
        shared = _output_stage(module.input_quantizer, f"{node.name}.in")
        if shared is None:
            raise PlanError(f"{node.name}: bypassed concat input quantizer")
        return _ConcatStep(node.name, list(node.inputs), shared, module.axis)
    if node.op == OpKind.QUANT_LEAKY_RELU and isinstance(module, QuantizedLeakyReLU):
        internal = _output_stage(module.internal_quantizer, f"{node.name}.internal")
        if internal is None:
            raise PlanError(f"{node.name}: bypassed leaky-relu internal quantizer")
        alpha_quant = _require_tqt(module.alpha_quantizer, f"{node.name}.alpha")
        alpha_code = int(alpha_quant.quantize_to_integers(module.alpha.data))
        return _LeakyReLUStep(node.name, list(node.inputs), internal, alpha_code,
                              _stage_from(alpha_quant).fraction,
                              _output_stage(module.output_quantizer, f"{node.name}.out"))
    if node.op == OpKind.MAXPOOL and isinstance(module, MaxPool2d):
        return _MaxPoolStep(node.name, list(node.inputs), module)
    if node.op == OpKind.GLOBAL_AVGPOOL and isinstance(module, GlobalAvgPool2d):
        return _GlobalAvgPoolStep(node.name, list(node.inputs), module.keepdims)
    if node.op == OpKind.FLATTEN:
        start_dim = node.attrs.get("start_dim", 1)
        if module is not None:
            start_dim = getattr(module, "start_dim", start_dim)
        return _ReshapeStep(node.name, node.op, list(node.inputs), start_dim)
    if node.op in OpKind.PASSTHROUGH_KINDS:
        return _ReshapeStep(node.name, node.op, list(node.inputs), None)
    if node.op in (OpKind.RELU, OpKind.RELU6):
        return _ActivationOnlyStep(node.name, node.op, list(node.inputs))
    raise PlanError(
        f"node {node.name!r} of kind {node.op!r} cannot be lowered to the integer "
        f"engine; run the optimization transforms and the quantization pass first"
    )


def lower_graph(graph: GraphIR) -> "ExecutionPlan":
    """Lower a quantized graph into a symbolic integer execution plan."""
    PIPELINE_COUNTERS.lowerings += 1
    graph.validate()
    if len(graph.input_names) != 1:
        raise PlanError("the engine lowers single-input graphs only")
    steps: list[_Step] = []
    for node in graph.topological_order():
        if node.op == OpKind.INPUT:
            continue
        steps.append(_lower_node(node))
    return ExecutionPlan(graph_name=graph.graph_name, input_name=graph.input_names[0],
                         output_name=graph.output_name, steps=steps)


# ---------------------------------------------------------------------- #
# Profiling
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class StepTiming:
    """Mean wall time of one plan step inside a profiled forward pass."""

    name: str
    op: str
    mean_ms: float
    share: float                 # fraction of the total per-pass time
    variant: str | None = None   # kernel variant, when the step is tunable


@dataclass(frozen=True)
class PlanProfile:
    """Per-step timing breakdown of a compiled engine (``engine.profile()``)."""

    graph_name: str
    input_shape: tuple[int, ...]
    repeats: int
    steps: list[StepTiming]
    total_ms: float

    def table(self) -> str:
        lines = [f"Plan profile {self.graph_name!r} — input {self.input_shape}, "
                 f"{self.repeats} passes, {self.total_ms:.3f} ms/pass"]
        for timing in self.steps:
            variant = f" [{timing.variant}]" if timing.variant else ""
            lines.append(f"  {timing.name:<40s} {timing.op:<18s} "
                         f"{timing.mean_ms:8.3f} ms  {100 * timing.share:5.1f}%{variant}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "graph": self.graph_name,
            "input_shape": list(self.input_shape),
            "repeats": self.repeats,
            "total_ms": self.total_ms,
            "steps": [{"name": t.name, "op": t.op, "mean_ms": t.mean_ms,
                       "share": t.share, "variant": t.variant} for t in self.steps],
        }


# ---------------------------------------------------------------------- #
# The plan and its compiled form
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class EngineOutput:
    """Integer result of one engine forward pass."""

    codes: np.ndarray          # int32 codes (int64 when a bypassed final stage overflows it)
    fraction: int
    divisor: int

    def dequantize(self) -> np.ndarray:
        """Real-domain values ``codes * 2^-fraction / divisor``."""
        return self.codes.astype(np.float64) * (2.0 ** -self.fraction) / self.divisor


@dataclass
class ExecutionPlan:
    """A linearized integer inference program over graph nodes."""

    graph_name: str
    input_name: str
    output_name: str
    steps: list = field(default_factory=list)

    def bind(self, input_shape: tuple[int, ...], accumulate: str = "blas",
             reuse_buffers: bool = True, mode: str = "tape",
             fuse: bool = True) -> "CompiledEngine":
        """Bind the plan to a concrete input shape.

        Infers shapes and value metadata, stages weights for the requested
        accumulation backend (``"blas"`` exact float64 lanes or ``"int"``
        pure int64), verifies accumulator ranges, and assigns every step an
        output buffer with linear-scan reuse.  ``reuse_buffers=False`` gives
        every step a private output buffer and private scratch — required
        when steps may execute concurrently (branch-parallel engines).

        ``mode`` selects the execution path of :meth:`CompiledEngine.run`:
        ``"tape"`` (default) compiles the bound steps into a flat instruction
        program with fused elementwise chains
        (:mod:`repro.engine.program`); ``"steps"`` keeps the per-step
        interpreter as the bit-exact reference path.  ``fuse=False``
        disables the tape's elementwise-chain elimination (for A/B
        benchmarking); both settings are bit-exact.
        """
        if accumulate not in ("blas", "int"):
            raise ValueError(f"unknown accumulation mode {accumulate!r}")
        if mode not in ("tape", "steps"):
            raise ValueError(f"unknown execution mode {mode!r}; "
                             f"expected 'tape' or 'steps'")
        input_shape = tuple(int(s) for s in input_shape)
        pool = _BufferPool()
        ctx = _BindContext(pool, accumulate, share_scratch=reuse_buffers)

        slots = {self.input_name: 0}
        for i, step in enumerate(self.steps):
            slots[step.name] = i + 1
        # Last step index at which each storage key is read (storage keys
        # collapse alias chains so views keep their base buffer alive).
        storage_key = {self.input_name: 0}
        for i, step in enumerate(self.steps):
            key = i + 1
            if step.alias:
                key = storage_key[step.inputs[0]]
            storage_key[step.name] = key
        last_use: dict[int, int] = {storage_key[self.output_name]: len(self.steps)}
        for i, step in enumerate(self.steps):
            for name in step.inputs:
                key = storage_key[name]
                last_use[key] = max(last_use.get(key, -1), i) \
                    if key != storage_key[self.output_name] else len(self.steps)

        values: dict[str, _BoundValue] = {
            self.input_name: _BoundValue(slot=0, shape=input_shape,
                                         meta=ValueMeta(fraction=0, divisor=1, max_abs=0))
        }
        buffers: dict[int, np.ndarray] = {}
        bound_steps: list[_BoundStep] = []
        for i, step in enumerate(self.steps):
            inputs = [values[name] for name in step.inputs]
            bound_cls, out_shape, out_meta, out_buffer = step.bind(inputs, ctx)
            key = storage_key[step.name]
            if out_buffer is not None:
                buffers[key] = out_buffer
            bound = bound_cls(step, [v.slot for v in inputs], slots[step.name], out_buffer)
            # Bind-time metadata for the tape compiler (and introspection):
            # the value shapes/metas the binder inferred for this step.
            bound.in_shapes = [v.shape for v in inputs]
            bound.in_metas = [v.meta for v in inputs]
            bound.out_shape = out_shape
            bound.out_meta = out_meta
            bound_steps.append(bound)
            values[step.name] = _BoundValue(slot=slots[step.name], shape=out_shape,
                                            meta=out_meta)
            if reuse_buffers:
                for k, last in list(last_use.items()):
                    if last == i and k in buffers:
                        pool.release(buffers.pop(k))
        output_value = values[self.output_name]
        engine = CompiledEngine(plan=self, steps=bound_steps, input_shape=input_shape,
                                output_slot=output_value.slot, output_shape=output_value.shape,
                                output_meta=output_value.meta, slot_count=len(self.steps) + 1,
                                pool=pool, accumulate=accumulate, mode=mode, fuse=fuse)
        if mode == "tape":
            # Compile (and, on a plan's first bind, autotune) the tape
            # eagerly: serving never pays it mid-stream, and shard engines
            # built on worker threads reuse the plan's cached choices
            # race-free.
            engine._ensure_tape()
        return engine

    def profile(self, input_shape: tuple[int, ...], accumulate: str = "blas",
                repeats: int = 5, x: np.ndarray | None = None) -> PlanProfile:
        """Bind the plan and return a per-step timing breakdown.

        Convenience wrapper over :meth:`CompiledEngine.profile`; reuse an
        existing engine's ``profile()`` to avoid the throwaway bind.
        """
        return self.bind(input_shape, accumulate=accumulate).profile(x=x, repeats=repeats)

    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """Human-readable plan listing, one step per line."""
        lines = [f"ExecutionPlan {self.graph_name!r} ({len(self.steps)} steps)"]
        for step in self.steps:
            lines.append(f"  {step.name:<40s} {step.op:<18s} {step.describe()}")
        return "\n".join(lines)

    def manifest(self) -> dict:
        """Machine-readable plan description (JSON-serializable)."""
        layers = []
        weight_bytes = 0
        for step in self.steps:
            entry: dict = {"name": step.name, "op": step.op, "detail": step.describe()}
            # Optimizer wrappers (fused activations) impersonate their inner
            # compute step; unwrap so the manifest keeps the weight rows.
            while not isinstance(step, _ComputeStep) and hasattr(step, "inner"):
                step = step.inner
            if isinstance(step, _ComputeStep):
                entry.update({
                    "weight_dtype": str(step.weight_codes.dtype),
                    "weight_shape": list(step.weight_codes.shape),
                    "weight_fraction": step.weight_fraction,
                    "has_bias": step.bias_codes is not None,
                    "accumulator_bound": step.accumulator_bound,
                    "fits_int32_accumulator": step.fits_int32,
                })
                weight_bytes += step.weight_codes.nbytes
            layers.append(entry)
        return {
            "graph": self.graph_name,
            "steps": layers,
            "weight_bytes": weight_bytes,
            "int32_mac_compatible": all(layer.get("fits_int32_accumulator", True)
                                        for layer in layers),
        }


class CompiledEngine:
    """A bound, executable integer inference plan."""

    def __init__(self, plan: ExecutionPlan, steps: list[_BoundStep],
                 input_shape: tuple[int, ...], output_slot: int,
                 output_shape: tuple[int, ...], output_meta: ValueMeta,
                 slot_count: int, pool: _BufferPool, accumulate: str,
                 mode: str = "steps", fuse: bool = True) -> None:
        self.plan = plan
        self.steps = steps
        self.input_shape = input_shape
        self.output_slot = output_slot
        self.output_shape = output_shape
        self.output_meta = output_meta
        self.accumulate = accumulate
        self.mode = mode
        self.fuse = fuse
        self.buffers_created = pool.buffers_created
        self.buffer_bytes = pool.bytes_created
        #: dtype of the float staging/input buffers (the integer codes ride
        #: in exact float64 lanes); callers staging requests should match it.
        self.input_dtype = np.dtype(np.float64)
        self._partial_staging: np.ndarray | None = None
        self._env: list = [None] * slot_count
        #: the compiled instruction program (lazily built on the first run
        #: in tape mode; see :mod:`repro.engine.program`)
        self.tape = None
        # int32 covers every quantized output stage; a bypassed final stage
        # can carry raw accumulator codes, which need the wider dtype.
        self._codes_dtype = (np.int64 if output_meta.max_abs > np.iinfo(np.int32).max
                             else np.int32)

    @property
    def batch_size(self) -> int:
        return self.input_shape[0]

    def _check_input(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != self.input_shape:
            raise ValueError(f"engine is bound to input shape {self.input_shape}, "
                             f"got {x.shape}")
        if not np.isfinite(x).all():
            raise ValueError("engine inputs must be finite; got NaN or Inf values "
                             "(quantization codes for non-finite inputs are undefined)")
        return x

    def _ensure_tape(self):
        """Compile the instruction program on first use (tape mode only)."""
        if self.tape is None:
            from .program import compile_tape
            self.tape = compile_tape(self, fuse=self.fuse)
        return self.tape

    def run(self, x: np.ndarray) -> EngineOutput:
        """Execute the plan on a float input batch, returning integer codes.

        In ``"tape"`` mode (the default) the compiled instruction program
        executes: a flat list of prebound kernel calls over a preallocated
        buffer arena, bit-exact with the ``"steps"`` interpreter.  The
        returned codes are a fresh array; internal buffers are reused
        across calls and must not leak to callers.
        """
        x = self._check_input(x)
        if self.mode == "tape":
            tape = self._ensure_tape()
            np.copyto(tape.input_buffer, x)
            tape.execute()
            codes = tape.output_array.astype(self._codes_dtype)
            return EngineOutput(codes=codes, fraction=self.output_meta.fraction,
                                divisor=self.output_meta.divisor)
        return self.run_steps(x, _checked=True)

    def run_steps(self, x: np.ndarray, _checked: bool = False) -> EngineOutput:
        """Execute through the per-step interpreter (the reference path)."""
        if not _checked:
            x = self._check_input(x)
        env = self._env
        env[0] = x  # steps only read the input; no defensive copy needed
        for step in self.steps:
            step.run(env)
        codes = env[self.output_slot].astype(self._codes_dtype)
        return EngineOutput(codes=codes, fraction=self.output_meta.fraction,
                            divisor=self.output_meta.divisor)

    def profile(self, x: np.ndarray | None = None, repeats: int = 5,
                warmup: int = 1) -> PlanProfile:
        """Per-step wall-time breakdown over ``repeats`` full forward passes.

        Steps execute in plan order on the real environment, so every step
        sees its true input; only the timing instrumentation is added.  This
        is the signal the backend autotuner consumes and the first place to
        look when deciding which op to optimize next.
        """
        if x is None:
            x = np.zeros(self.input_shape)
        x = self._check_input(x)
        env = self._env
        totals = [0.0] * len(self.steps)
        for pass_index in range(warmup + repeats):
            env[0] = x
            for i, step in enumerate(self.steps):
                start = time.perf_counter()
                step.run(env)
                elapsed = time.perf_counter() - start
                if pass_index >= warmup:
                    totals[i] += elapsed
        total = sum(totals) or 1.0
        timings = [
            StepTiming(name=bound.step.name, op=bound.step.op,
                       mean_ms=t / repeats * 1e3, share=t / total,
                       variant=getattr(bound, "variant", None))
            for bound, t in zip(self.steps, totals)
        ]
        return PlanProfile(graph_name=self.plan.graph_name, input_shape=self.input_shape,
                           repeats=repeats, steps=timings,
                           total_ms=sum(t.mean_ms for t in timings))

    def run_partial(self, images: np.ndarray) -> EngineOutput:
        """Execute a partially filled batch of ``1 <= fill <= batch_size`` images.

        The engine is bound to a fixed batch shape, so the images are staged
        into a lazily allocated zero-padded buffer; every plan op is
        per-sample independent, so the padding rows never influence the real
        rows.  The returned codes are sliced to the true fill — callers (the
        dynamic batcher, serving stats) see variable-fill semantics instead
        of paying full-batch padding.
        """
        images = np.asarray(images, dtype=self.input_dtype)
        if images.ndim != 4 or images.shape[1:] != self.input_shape[1:]:
            expected = ", ".join(str(s) for s in self.input_shape[1:])
            raise ValueError(f"expected images shaped (fill, {expected}), got {images.shape}")
        fill = images.shape[0]
        if not 1 <= fill <= self.batch_size:
            raise ValueError(f"fill must be in [1, {self.batch_size}], got {fill}")
        if fill == self.batch_size:
            return self.run(images)
        if self._partial_staging is None:
            self._partial_staging = np.zeros(self.input_shape, dtype=self.input_dtype)
        staging = self._partial_staging
        staging[:fill] = images
        staging[fill:] = 0.0
        out = self.run(staging)
        return EngineOutput(codes=out.codes[:fill], fraction=out.fraction,
                            divisor=out.divisor)
