"""Numerical gradient checking utilities.

These are used extensively by the test suite to validate the analytic
gradients of the autograd ops and of the TQT quantizer, mirroring the
paper's emphasis on gradient correctness (Section 3.3, Figure 1).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    epsilon: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. ``inputs[index]``."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - epsilon
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * epsilon)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-4,
    rtol: float = 1e-3,
    epsilon: float = 1e-5,
) -> dict[int, float]:
    """Compare analytic and numerical gradients for every differentiable input.

    Returns a mapping from input index to the maximum absolute error, and
    raises ``AssertionError`` when any gradient disagrees beyond tolerance.
    """
    for t in inputs:
        t.zero_grad()
    output = fn(*inputs)
    output.sum().backward()
    errors: dict[int, float] = {}
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numerical_gradient(fn, inputs, i, epsilon=epsilon)
        error = float(np.max(np.abs(analytic - numeric)))
        errors[i] = error
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs error {error:.3e}"
            )
    return errors
