"""Reverse-mode automatic differentiation over NumPy arrays.

This module provides the :class:`Tensor` class, a thin wrapper around
``numpy.ndarray`` that records a computation tape and supports reverse-mode
differentiation via :meth:`Tensor.backward`.  It is the substrate on which
the neural-network layers (:mod:`repro.nn`), the quantizers
(:mod:`repro.quant`) and the training loops (:mod:`repro.training`) are
built, replacing the TensorFlow runtime used by the original TQT paper.

Design notes
------------
* Every differentiable operation creates a new ``Tensor`` whose ``_parents``
  list stores ``(parent_tensor, grad_fn)`` pairs.  ``grad_fn`` maps the
  upstream gradient (a NumPy array with the shape of the *output*) to the
  gradient contribution for that parent (a NumPy array with the shape of the
  *parent*).
* Broadcasting is handled uniformly by :func:`unbroadcast`, which sums the
  upstream gradient over broadcast dimensions.
* Gradient computation is disabled inside a :func:`no_grad` context or when
  the global flag is switched off; in that case ops return plain constant
  tensors, which keeps inference graphs cheap.
* Straight-through estimators (round/ceil with unit gradients) live in
  :mod:`repro.autograd.functional`; this module only provides exact
  gradients.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "unbroadcast",
    "zeros",
    "ones",
    "full",
    "arange",
    "randn",
    "rand",
    "concatenate",
    "stack",
    "where",
    "maximum",
    "minimum",
    "exp",
    "log",
    "sqrt",
    "tanh",
    "abs",
    "clip",
    "matmul",
    "pad",
]

GradFn = Callable[[np.ndarray], np.ndarray]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return whether gradient recording is currently enabled."""
    return _GRAD_ENABLED


def set_grad_enabled(enabled: bool) -> None:
    """Globally enable or disable gradient recording."""
    global _GRAD_ENABLED
    _GRAD_ENABLED = bool(enabled)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording within its scope."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    NumPy broadcasting can expand a parent of shape ``shape`` to the output
    shape; the corresponding gradient must be summed over the broadcast
    axes to match the parent.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the parent but expanded in the output.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array with reverse-mode autograd support.

    Parameters
    ----------
    data:
        Array-like payload. Converted to ``float64`` unless an explicit dtype
        is given or the input is already a floating/integer array.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Sequence[tuple["Tensor", GradFn]] | None = None,
        name: str | None = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype not in (np.float32, np.float64):
            arr = arr.astype(np.float64)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad) and is_grad_enabled()
        self._parents: tuple[tuple["Tensor", GradFn], ...] = tuple(parents or ())
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the underlying NumPy array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.data.dtype}{grad_flag})"

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Iterable[tuple["Tensor", GradFn]],
    ) -> "Tensor":
        """Create an op output, wiring parents only when grads are enabled."""
        parents = [(p, fn) for p, fn in parents if p.requires_grad]
        requires = bool(parents) and is_grad_enabled()
        return Tensor(data, requires_grad=requires, parents=parents if requires else None)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        """Return a differentiable copy of this tensor."""
        return Tensor._make(self.data.copy(), [(self, lambda g: g)])

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Backward
    # ------------------------------------------------------------------ #
    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Backpropagate ``grad`` through the recorded graph.

        Parameters
        ----------
        grad:
            Upstream gradient with the same shape as ``self``.  Defaults to
            ``1.0`` for scalar outputs (the typical loss case).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        # Topological order of the graph reachable from self.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent, _ in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if not node._parents:
                # Leaf tensor: accumulate into .grad
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            for parent, grad_fn in node._parents:
                contribution = grad_fn(node_grad)
                contribution = np.asarray(contribution, dtype=parent.data.dtype)
                if contribution.shape != parent.data.shape:
                    contribution = unbroadcast(contribution, parent.data.shape)
                existing = grads.get(id(parent))
                grads[id(parent)] = contribution if existing is None else existing + contribution
            # Interior nodes also expose .grad when explicitly requested by
            # marking them as leaves is not supported; keep memory small.

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = self.data + other.data
        return Tensor._make(out, [(self, lambda g: g), (other, lambda g: g)])

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = self.data - other.data
        return Tensor._make(out, [(self, lambda g: g), (other, lambda g: -g)])

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = self.data * other.data
        return Tensor._make(
            out,
            [(self, lambda g: g * other.data), (other, lambda g: g * self.data)],
        )

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out = self.data / other.data
        return Tensor._make(
            out,
            [
                (self, lambda g: g / other.data),
                (other, lambda g: -g * self.data / (other.data ** 2)),
            ],
        )

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, [(self, lambda g: -g)])

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out = self.data ** exponent
        return Tensor._make(
            out,
            [(self, lambda g: g * exponent * self.data ** (exponent - 1))],
        )

    def __matmul__(self, other) -> "Tensor":
        return matmul(self, other)

    # Comparison operators return plain boolean arrays (no gradient flows).
    def __lt__(self, other):
        return self.data < _raw(other)

    def __le__(self, other):
        return self.data <= _raw(other)

    def __gt__(self, other):
        return self.data > _raw(other)

    def __ge__(self, other):
        return self.data >= _raw(other)

    # ------------------------------------------------------------------ #
    # Shape ops
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out = self.data.reshape(shape)
        return Tensor._make(out, [(self, lambda g: g.reshape(original))])

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        inverse = tuple(np.argsort(axes))
        out = self.data.transpose(axes)
        return Tensor._make(out, [(self, lambda g: g.transpose(inverse))])

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.data.shape
        new_shape = shape[:start_dim] + (-1,)
        return self.reshape(new_shape)

    def __getitem__(self, index) -> "Tensor":
        out = self.data[index]
        shape = self.data.shape

        def grad_fn(g: np.ndarray) -> np.ndarray:
            full_grad = np.zeros(shape, dtype=g.dtype)
            np.add.at(full_grad, index, g)
            return full_grad

        return Tensor._make(out, [(self, grad_fn)])

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def grad_fn(g: np.ndarray) -> np.ndarray:
            if axis is None:
                return np.broadcast_to(g, shape).copy()
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            return np.broadcast_to(g_expanded, shape).copy()

        return Tensor._make(out, [(self, grad_fn)])

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self.data.max(axis=axis, keepdims=keepdims)
        data = self.data

        def grad_fn(g: np.ndarray) -> np.ndarray:
            if axis is None:
                mask = (data == data.max()).astype(g.dtype)
                mask /= mask.sum()
                return mask * g
            out_expanded = out if keepdims else np.expand_dims(out, axis)
            g_expanded = g if keepdims else np.expand_dims(g, axis)
            mask = (data == out_expanded).astype(g.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            return mask * g_expanded

        return Tensor._make(out, [(self, grad_fn)])

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # Convenience float reductions bypassing autograd (read-only stats).
    def abs_max(self) -> float:
        return float(np.abs(self.data).max())

    def std_value(self) -> float:
        return float(self.data.std())


def _raw(value) -> np.ndarray:
    return value.data if isinstance(value, Tensor) else np.asarray(value)


def as_tensor(value, requires_grad: bool = False) -> Tensor:
    """Coerce ``value`` into a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


# ---------------------------------------------------------------------- #
# Factory functions
# ---------------------------------------------------------------------- #
def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def full(shape, value: float, requires_grad: bool = False) -> Tensor:
    return Tensor(np.full(shape, float(value)), requires_grad=requires_grad)


def arange(*args, requires_grad: bool = False) -> Tensor:
    return Tensor(np.arange(*args, dtype=np.float64), requires_grad=requires_grad)


def randn(*shape, rng: np.random.Generator | None = None, requires_grad: bool = False) -> Tensor:
    rng = rng or np.random.default_rng()
    return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)


def rand(*shape, rng: np.random.Generator | None = None, requires_grad: bool = False) -> Tensor:
    rng = rng or np.random.default_rng()
    return Tensor(rng.random(shape), requires_grad=requires_grad)


# ---------------------------------------------------------------------- #
# Free-function ops
# ---------------------------------------------------------------------- #
def matmul(a: Tensor, b: Tensor) -> Tensor:
    """Matrix product with gradients for both operands (2-D or batched)."""
    a, b = as_tensor(a), as_tensor(b)
    out = a.data @ b.data

    def grad_a(g: np.ndarray) -> np.ndarray:
        return g @ np.swapaxes(b.data, -1, -2)

    def grad_b(g: np.ndarray) -> np.ndarray:
        return np.swapaxes(a.data, -1, -2) @ g

    return Tensor._make(out, [(a, grad_a), (b, grad_b)])


def exp(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out = np.exp(x.data)
    return Tensor._make(out, [(x, lambda g: g * out)])


def log(x: Tensor) -> Tensor:
    x = as_tensor(x)
    return Tensor._make(np.log(x.data), [(x, lambda g: g / x.data)])


def sqrt(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out = np.sqrt(x.data)
    return Tensor._make(out, [(x, lambda g: g * 0.5 / out)])


def tanh(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out = np.tanh(x.data)
    return Tensor._make(out, [(x, lambda g: g * (1.0 - out ** 2))])


def abs(x: Tensor) -> Tensor:  # noqa: A001 - mirrors numpy naming
    x = as_tensor(x)
    return Tensor._make(np.abs(x.data), [(x, lambda g: g * np.sign(x.data))])


def clip(x: Tensor, low: float, high: float) -> Tensor:
    """Clip with zero gradient outside ``[low, high]`` (exact sub-gradient)."""
    x = as_tensor(x)
    out = np.clip(x.data, low, high)
    mask = ((x.data >= low) & (x.data <= high)).astype(x.data.dtype)
    return Tensor._make(out, [(x, lambda g: g * mask)])


def maximum(a: Tensor, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = np.maximum(a.data, b.data)
    mask_a = (a.data >= b.data).astype(a.data.dtype)
    return Tensor._make(
        out,
        [(a, lambda g: g * mask_a), (b, lambda g: g * (1.0 - mask_a))],
    )


def minimum(a: Tensor, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out = np.minimum(a.data, b.data)
    mask_a = (a.data <= b.data).astype(a.data.dtype)
    return Tensor._make(
        out,
        [(a, lambda g: g * mask_a), (b, lambda g: g * (1.0 - mask_a))],
    )


def where(condition, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select; ``condition`` is treated as a constant mask."""
    cond = _raw(condition).astype(bool)
    a, b = as_tensor(a), as_tensor(b)
    out = np.where(cond, a.data, b.data)
    return Tensor._make(
        out,
        [
            (a, lambda g: g * cond),
            (b, lambda g: g * (~cond)),
        ],
    )


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    parents = []
    for i, t in enumerate(tensors):
        start, stop = offsets[i], offsets[i + 1]

        def grad_fn(g: np.ndarray, start=start, stop=stop) -> np.ndarray:
            index = [slice(None)] * g.ndim
            index[axis] = slice(start, stop)
            return g[tuple(index)]

        parents.append((t, grad_fn))
    return Tensor._make(out, parents)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)
    parents = []
    for i, t in enumerate(tensors):
        def grad_fn(g: np.ndarray, i=i) -> np.ndarray:
            return np.take(g, i, axis=axis)

        parents.append((t, grad_fn))
    return Tensor._make(out, parents)


def pad(x: Tensor, pad_width: Sequence[tuple[int, int]], value: float = 0.0) -> Tensor:
    """Constant-pad ``x`` with per-axis ``(before, after)`` widths."""
    x = as_tensor(x)
    pad_width = tuple(tuple(p) for p in pad_width)
    out = np.pad(x.data, pad_width, mode="constant", constant_values=value)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        slices = tuple(
            slice(before, g.shape[i] - after) for i, (before, after) in enumerate(pad_width)
        )
        return g[slices]

    return Tensor._make(out, [(x, grad_fn)])
