"""Vectorized convolution and pooling primitives (NCHW layout).

The implementation uses im2col / col2im with NumPy stride tricks so the heavy
lifting stays in BLAS calls rather than Python loops, following the
ml-systems guidance of expressing algorithms with vectorized NumPy idioms.

Supported ops:

* :func:`conv2d` — standard and grouped 2-D convolution (grouped with
  ``groups == in_channels`` gives the depthwise convolutions that make
  MobileNets hard to quantize per-tensor).
* :func:`max_pool2d`, :func:`avg_pool2d`, :func:`global_avg_pool2d`.

All functions take and return :class:`~repro.autograd.tensor.Tensor` and
register exact gradients on the tape.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .tensor import Tensor, as_tensor

__all__ = [
    "conv2d",
    "conv_output_size",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "im2col",
    "col2im",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kernel: tuple[int, int], stride: tuple[int, int],
           padding: tuple[int, int]) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x: array of shape ``(N, C, H, W)``.

    Returns
    -------
    Array of shape ``(N, C, KH, KW, OH, OW)`` sharing memory with the padded
    input where possible.
    """
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")
    windows = sliding_window_view(x, (kh, kw), axis=(2, 3))
    # windows: (N, C, H', W', KH, KW) where H' = H - KH + 1
    windows = windows[:, :, ::sh, ::sw, :, :]
    # -> (N, C, KH, KW, OH, OW)
    return np.ascontiguousarray(windows.transpose(0, 1, 4, 5, 2, 3))


def col2im(cols: np.ndarray, input_shape: tuple[int, int, int, int],
           kernel: tuple[int, int], stride: tuple[int, int],
           padding: tuple[int, int]) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add column gradients back to image."""
    n, c, h, w = input_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    h_padded, w_padded = h + 2 * ph, w + 2 * pw
    oh = conv_output_size(h, kh, sh, ph)
    ow = conv_output_size(w, kw, sw, pw)
    image = np.zeros((n, c, h_padded, w_padded), dtype=cols.dtype)
    # cols: (N, C, KH, KW, OH, OW)
    for i in range(kh):
        i_end = i + sh * oh
        for j in range(kw):
            j_end = j + sw * ow
            image[:, :, i:i_end:sh, j:j_end:sw] += cols[:, :, i, j, :, :]
    if ph or pw:
        image = image[:, :, ph:h_padded - ph if ph else h_padded, pw:w_padded - pw if pw else w_padded]
    return image


def _normalize_pair(value) -> tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride=1, padding=0, groups: int = 1) -> Tensor:
    """2-D convolution over an NCHW input.

    Parameters
    ----------
    x: ``(N, C_in, H, W)`` input tensor.
    weight: ``(C_out, C_in // groups, KH, KW)`` filters.
    bias: optional ``(C_out,)`` bias.
    groups: ``1`` for dense convolution, ``C_in`` for depthwise.
    """
    x, weight = as_tensor(x), as_tensor(weight)
    stride = _normalize_pair(stride)
    padding = _normalize_pair(padding)
    n, c_in, h, w = x.data.shape
    c_out, c_in_per_group, kh, kw = weight.data.shape
    if c_in % groups or c_out % groups:
        raise ValueError(f"channels ({c_in}->{c_out}) not divisible by groups={groups}")
    if c_in_per_group != c_in // groups:
        raise ValueError(
            f"weight expects {c_in_per_group} input channels per group, input has {c_in // groups}"
        )
    oh = conv_output_size(h, kh, stride[0], padding[0])
    ow = conv_output_size(w, kw, stride[1], padding[1])

    cols = im2col(x.data, (kh, kw), stride, padding)  # (N, C, KH, KW, OH, OW)
    cols_grouped = cols.reshape(n, groups, c_in_per_group, kh, kw, oh, ow)
    # (G, N, OH, OW, Cg*KH*KW)
    cols_mat = cols_grouped.transpose(1, 0, 5, 6, 2, 3, 4).reshape(
        groups, n * oh * ow, c_in_per_group * kh * kw
    )
    w_mat = weight.data.reshape(groups, c_out // groups, c_in_per_group * kh * kw)
    # (G, N*OH*OW, C_out/G)
    out_mat = np.einsum("gnk,gok->gno", cols_mat, w_mat, optimize=True)
    out = out_mat.reshape(groups, n, oh, ow, c_out // groups)
    out = out.transpose(1, 0, 4, 2, 3).reshape(n, c_out, oh, ow)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    def grad_x(g: np.ndarray) -> np.ndarray:
        g_mat = g.reshape(n, groups, c_out // groups, oh, ow)
        g_mat = g_mat.transpose(1, 0, 3, 4, 2).reshape(groups, n * oh * ow, c_out // groups)
        cols_grad = np.einsum("gno,gok->gnk", g_mat, w_mat, optimize=True)
        cols_grad = cols_grad.reshape(groups, n, oh, ow, c_in_per_group, kh, kw)
        cols_grad = cols_grad.transpose(1, 0, 4, 5, 6, 2, 3).reshape(n, c_in, kh, kw, oh, ow)
        return col2im(cols_grad, (n, c_in, h, w), (kh, kw), stride, padding)

    def grad_w(g: np.ndarray) -> np.ndarray:
        g_mat = g.reshape(n, groups, c_out // groups, oh, ow)
        g_mat = g_mat.transpose(1, 0, 3, 4, 2).reshape(groups, n * oh * ow, c_out // groups)
        w_grad = np.einsum("gno,gnk->gok", g_mat, cols_mat, optimize=True)
        return w_grad.reshape(c_out, c_in_per_group, kh, kw)

    parents = [(x, grad_x), (weight, grad_w)]
    if bias is not None:
        bias = as_tensor(bias)
        parents.append((bias, lambda g: g.sum(axis=(0, 2, 3))))
    return Tensor._make(out, parents)


def max_pool2d(x: Tensor, kernel_size=2, stride=None, padding=0) -> Tensor:
    """Max pooling over NCHW input."""
    x = as_tensor(x)
    kernel = _normalize_pair(kernel_size)
    stride = _normalize_pair(stride if stride is not None else kernel_size)
    padding = _normalize_pair(padding)
    n, c, h, w = x.data.shape
    oh = conv_output_size(h, kernel[0], stride[0], padding[0])
    ow = conv_output_size(w, kernel[1], stride[1], padding[1])

    cols = im2col(x.data, kernel, stride, padding)  # (N, C, KH, KW, OH, OW)
    cols_flat = cols.reshape(n, c, kernel[0] * kernel[1], oh, ow)
    argmax = cols_flat.argmax(axis=2)
    out = np.take_along_axis(cols_flat, argmax[:, :, None, :, :], axis=2)[:, :, 0, :, :]

    def grad_fn(g: np.ndarray) -> np.ndarray:
        cols_grad_flat = np.zeros_like(cols_flat)
        np.put_along_axis(cols_grad_flat, argmax[:, :, None, :, :], g[:, :, None, :, :], axis=2)
        cols_grad = cols_grad_flat.reshape(n, c, kernel[0], kernel[1], oh, ow)
        return col2im(cols_grad, (n, c, h, w), kernel, stride, padding)

    return Tensor._make(out, [(x, grad_fn)])


def avg_pool2d(x: Tensor, kernel_size=2, stride=None, padding=0) -> Tensor:
    """Average pooling over NCHW input."""
    x = as_tensor(x)
    kernel = _normalize_pair(kernel_size)
    stride = _normalize_pair(stride if stride is not None else kernel_size)
    padding = _normalize_pair(padding)
    n, c, h, w = x.data.shape
    oh = conv_output_size(h, kernel[0], stride[0], padding[0])
    ow = conv_output_size(w, kernel[1], stride[1], padding[1])
    window = kernel[0] * kernel[1]

    cols = im2col(x.data, kernel, stride, padding)
    out = cols.mean(axis=(2, 3))

    def grad_fn(g: np.ndarray) -> np.ndarray:
        g_cols = np.broadcast_to(
            g[:, :, None, None, :, :] / window, (n, c, kernel[0], kernel[1], oh, ow)
        ).astype(g.dtype)
        return col2im(g_cols, (n, c, h, w), kernel, stride, padding)

    return Tensor._make(out, [(x, grad_fn)])


def global_avg_pool2d(x: Tensor, keepdims: bool = True) -> Tensor:
    """Global average pooling (mean over the spatial dimensions)."""
    x = as_tensor(x)
    return x.mean(axis=(2, 3), keepdims=keepdims)
