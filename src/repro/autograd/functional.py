"""Differentiable activation functions, losses and straight-through estimators.

The straight-through estimators (STE) defined here follow Section 3.3 of the
TQT paper precisely: the derivative of ``round`` and ``ceil`` is taken to be
``1`` in the backward pass, while the *forward* value keeps the rounded
result (``round(x) != x``).  This distinction — as opposed to treating
``round`` as the identity everywhere — is what gives the TQT threshold
gradient its range/precision trade-off behaviour.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "relu",
    "relu6",
    "leaky_relu",
    "sigmoid",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "mse_loss",
    "round_ste",
    "ceil_ste",
    "floor_ste",
    "stop_gradient",
    "round_half_to_even",
    "dropout",
]


def relu(x: Tensor) -> Tensor:
    x = as_tensor(x)
    mask = (x.data > 0).astype(x.data.dtype)
    return Tensor._make(x.data * mask, [(x, lambda g: g * mask)])


def relu6(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out = np.clip(x.data, 0.0, 6.0)
    mask = ((x.data > 0) & (x.data < 6.0)).astype(x.data.dtype)
    return Tensor._make(out, [(x, lambda g: g * mask)])


def leaky_relu(x: Tensor, negative_slope: float = 0.1) -> Tensor:
    x = as_tensor(x)
    mask = (x.data > 0).astype(x.data.dtype)
    scale = mask + negative_slope * (1.0 - mask)
    return Tensor._make(x.data * scale, [(x, lambda g: g * scale)])


def sigmoid(x: Tensor) -> Tensor:
    x = as_tensor(x)
    out = 1.0 / (1.0 + np.exp(-x.data))
    return Tensor._make(out, [(x, lambda g: g * out * (1.0 - out))])


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        dot = (g * out).sum(axis=axis, keepdims=True)
        return out * (g - dot)

    return Tensor._make(out, [(x, grad_fn)])


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_sum
    soft = np.exp(out)

    def grad_fn(g: np.ndarray) -> np.ndarray:
        return g - soft * g.sum(axis=axis, keepdims=True)

    return Tensor._make(out, [(x, grad_fn)])


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Softmax cross-entropy against integer class labels, averaged over batch.

    This is the training loss used for all quantized retraining in the paper
    (Section 5.2: "Softmax cross-entropy loss is used to compute quantization
    threshold gradients").
    """
    logits = as_tensor(logits)
    labels = np.asarray(labels, dtype=np.int64)
    if logits.data.ndim != 2:
        raise ValueError(f"expected (batch, classes) logits, got shape {logits.shape}")
    batch = logits.data.shape[0]
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(batch), labels]
    return -(picked.sum() * (1.0 / batch))


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    prediction, target = as_tensor(prediction), as_tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout.  The paper disables dropout during TQT retraining;
    it is kept here so floating-point baselines can be trained faithfully."""
    x = as_tensor(x)
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype) / keep
    return Tensor._make(x.data * mask, [(x, lambda g: g * mask)])


# ---------------------------------------------------------------------- #
# Straight-through estimators (Section 3.3)
# ---------------------------------------------------------------------- #
def round_half_to_even(values: np.ndarray) -> np.ndarray:
    """Banker's rounding, the paper's round-to-nearest-even ``⌊.⌉``."""
    return np.rint(values)


def round_ste(x: Tensor) -> Tensor:
    """Round-to-nearest-even with a straight-through unit gradient."""
    x = as_tensor(x)
    return Tensor._make(round_half_to_even(x.data), [(x, lambda g: g)])


def ceil_ste(x: Tensor) -> Tensor:
    """Ceil with a straight-through unit gradient (used on ``log2 t``)."""
    x = as_tensor(x)
    return Tensor._make(np.ceil(x.data), [(x, lambda g: g)])


def floor_ste(x: Tensor) -> Tensor:
    """Floor with a straight-through unit gradient."""
    x = as_tensor(x)
    return Tensor._make(np.floor(x.data), [(x, lambda g: g)])


def stop_gradient(x: Tensor) -> Tensor:
    """Equivalent of ``tf.stop_gradient``: identity forward, zero gradient."""
    return as_tensor(x).detach()
