"""Model registry mapping paper network names to scaled-down factories.

Each entry records which full-size network of the paper's evaluation suite
(Table 3) the nano model stands in for, so the benchmark harness can emit
rows with the paper's naming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..graph import GraphIR
from .darknet import darknet_nano
from .inception import inception_nano, inception_nano_deep
from .lenet import lenet_nano
from .mobilenet import mobilenet_v1_nano, mobilenet_v2_nano
from .resnet import resnet_nano, resnet_nano_deep
from .vgg import vgg_nano, vgg_nano_deep

__all__ = ["ModelSpec", "MODEL_REGISTRY", "build_model", "available_models"]


@dataclass(frozen=True)
class ModelSpec:
    """Metadata for one model-zoo entry."""

    name: str
    paper_name: str
    factory: Callable[..., GraphIR]
    input_size: int = 16
    in_channels: int = 3
    difficult: bool = False   # paper's "difficult to quantize" flag (depthwise / leaky relu)

    def build(self, num_classes: int = 10, seed: int = 0, **kwargs) -> GraphIR:
        return self.factory(num_classes=num_classes, in_channels=self.in_channels,
                            seed=seed, **kwargs)


MODEL_REGISTRY: dict[str, ModelSpec] = {
    "lenet_nano": ModelSpec("lenet_nano", "LeNet (sanity)", lenet_nano),
    "vgg_nano": ModelSpec("vgg_nano", "VGG 16", vgg_nano),
    "vgg_nano_deep": ModelSpec("vgg_nano_deep", "VGG 19", vgg_nano_deep),
    "inception_nano": ModelSpec("inception_nano", "Inception v1/v2", inception_nano),
    "inception_nano_deep": ModelSpec("inception_nano_deep", "Inception v3/v4",
                                     inception_nano_deep),
    "resnet_nano": ModelSpec("resnet_nano", "ResNet v1 50", resnet_nano),
    "resnet_nano_deep": ModelSpec("resnet_nano_deep", "ResNet v1 101/152", resnet_nano_deep),
    "mobilenet_v1_nano": ModelSpec("mobilenet_v1_nano", "MobileNet v1 1.0 224",
                                   mobilenet_v1_nano, difficult=True),
    "mobilenet_v2_nano": ModelSpec("mobilenet_v2_nano", "MobileNet v2 1.0 224",
                                   mobilenet_v2_nano, difficult=True),
    "darknet_nano": ModelSpec("darknet_nano", "DarkNet 19", darknet_nano, difficult=True),
}


def available_models() -> list[str]:
    return sorted(MODEL_REGISTRY)


def build_model(name: str, num_classes: int = 10, seed: int = 0, **kwargs) -> GraphIR:
    """Build a model from the registry by name."""
    try:
        spec = MODEL_REGISTRY[name]
    except KeyError as exc:
        raise ValueError(f"unknown model {name!r}; available: {available_models()}") from exc
    return spec.build(num_classes=num_classes, seed=seed, **kwargs)
