"""Model zoo: scaled-down, topologically faithful versions of the paper's networks."""

from .lenet import lenet_nano
from .vgg import vgg_nano, vgg_nano_deep
from .resnet import resnet_nano, resnet_nano_deep
from .inception import inception_nano, inception_nano_deep, avgpool_channel_hints
from .mobilenet import mobilenet_v1_nano, mobilenet_v2_nano
from .darknet import darknet_nano
from .registry import ModelSpec, MODEL_REGISTRY, build_model, available_models
from .compiled import CompiledModel, compile_registry_model

__all__ = [
    "lenet_nano",
    "vgg_nano",
    "vgg_nano_deep",
    "resnet_nano",
    "resnet_nano_deep",
    "inception_nano",
    "inception_nano_deep",
    "avgpool_channel_hints",
    "mobilenet_v1_nano",
    "mobilenet_v2_nano",
    "darknet_nano",
    "ModelSpec",
    "MODEL_REGISTRY",
    "build_model",
    "available_models",
    "CompiledModel",
    "compile_registry_model",
]
