"""Scaled-down ResNet v1 networks (residual blocks with eltwise-add).

The residual add is the structural feature that matters for quantization:
its two inputs must share a merged scale (Section 4.3), and the quantization
pass turns every ``add`` node into a :class:`QuantizedAdd`.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..graph import GraphBuilder, GraphIR, OpKind

__all__ = ["resnet_nano", "resnet_nano_deep"]


def _conv_bn(builder: GraphBuilder, x: str, name: str, in_channels: int, out_channels: int,
             rng: np.random.Generator, stride: int = 1, kernel: int = 3,
             relu: bool = True) -> str:
    padding = kernel // 2
    x = builder.layer(f"{name}_conv", OpKind.CONV,
                      nn.Conv2d(in_channels, out_channels, kernel, stride=stride,
                                padding=padding, rng=rng), x)
    x = builder.layer(f"{name}_bn", OpKind.BATCHNORM, nn.BatchNorm2d(out_channels), x)
    if relu:
        x = builder.layer(f"{name}_relu", OpKind.RELU, nn.ReLU(), x)
    return x


def _residual_block(builder: GraphBuilder, x: str, name: str, in_channels: int,
                    out_channels: int, rng: np.random.Generator, stride: int = 1) -> str:
    shortcut = x
    if stride != 1 or in_channels != out_channels:
        shortcut = _conv_bn(builder, x, f"{name}_short", in_channels, out_channels, rng,
                            stride=stride, kernel=1, relu=False)
    y = _conv_bn(builder, x, f"{name}_a", in_channels, out_channels, rng, stride=stride)
    y = _conv_bn(builder, y, f"{name}_b", out_channels, out_channels, rng, relu=False)
    out = builder.add(f"{name}_add", y, shortcut)
    return builder.layer(f"{name}_out_relu", OpKind.RELU, nn.ReLU(), out)


def _build_resnet(name: str, blocks_per_stage: list[int], num_classes: int,
                  in_channels: int, base_width: int, seed: int) -> GraphIR:
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(name)
    x = builder.input("input")
    x = _conv_bn(builder, x, "stem", in_channels, base_width, rng)
    channels = base_width
    for stage, num_blocks in enumerate(blocks_per_stage, start=1):
        out_channels = base_width * (2 ** (stage - 1))
        for block in range(num_blocks):
            stride = 2 if (block == 0 and stage > 1) else 1
            x = _residual_block(builder, x, f"stage{stage}_block{block + 1}",
                                channels, out_channels, rng, stride=stride)
            channels = out_channels
    x = builder.layer("gap", OpKind.GLOBAL_AVGPOOL, nn.GlobalAvgPool2d(keepdims=False), x)
    x = builder.layer("flatten", OpKind.FLATTEN, nn.Flatten(), x)
    x = builder.layer("fc", OpKind.LINEAR, nn.Linear(channels, num_classes, rng=rng), x)
    return builder.build(x)


def resnet_nano(num_classes: int = 10, in_channels: int = 3, base_width: int = 8,
                seed: int = 0) -> GraphIR:
    """ResNet v1-50 analogue: two stages of two residual blocks."""
    return _build_resnet("resnet_nano", [2, 2], num_classes, in_channels, base_width, seed)


def resnet_nano_deep(num_classes: int = 10, in_channels: int = 3, base_width: int = 8,
                     seed: int = 0) -> GraphIR:
    """ResNet v1-101/152 analogue: three stages of residual blocks."""
    return _build_resnet("resnet_nano_deep", [2, 2, 2], num_classes, in_channels,
                         base_width, seed)
