"""Scaled-down MobileNet v1 / v2 networks (depthwise-separable convolutions).

These are the paper's headline networks: per-tensor symmetric quantization
of depthwise convolution weights fails badly after calibration because the
per-channel weight ranges differ by orders of magnitude, and only trained
thresholds (TQT) recover floating-point accuracy (Table 1, Section 6.2).

To reproduce that pathology on a synthetic task, the depthwise weight
initialization deliberately spreads per-channel scales over several orders
of magnitude (``channel_range_spread``), mimicking the irregular
distributions of real ImageNet-trained MobileNets shown in Figure 5 of the
paper.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..graph import GraphBuilder, GraphIR, OpKind

__all__ = ["mobilenet_v1_nano", "mobilenet_v2_nano"]


def _spread_depthwise_channels(conv: nn.DepthwiseConv2d, bn: nn.BatchNorm2d,
                               rng: np.random.Generator, spread: float) -> None:
    """Give the depthwise block per-channel scale diversity that survives BN folding.

    Each depthwise filter and the matching batch-norm gain are scaled by a
    log-uniform factor in ``[1/spread, spread]``.  Scaling only the weights
    would be undone when the following batch norm is folded (folding divides
    by the per-channel output standard deviation), so the gain carries the
    diversity into the *folded* weights and the post-BN activations — the
    situation real ImageNet-trained MobileNets exhibit (Figure 5 of the
    paper) and the reason per-tensor calibrate-only quantization fails on
    them.
    """
    if spread <= 1.0:
        return
    channels = conv.weight.data.shape[0]
    log_spread = np.log(spread)
    factors = np.exp(rng.uniform(-log_spread, log_spread, size=channels))
    conv.weight.data *= factors.reshape(-1, 1, 1, 1)
    bn.gamma.data *= factors


def _conv_bn_relu6(builder: GraphBuilder, x: str, name: str, in_channels: int,
                   out_channels: int, rng: np.random.Generator, stride: int = 1,
                   kernel: int = 3) -> str:
    padding = kernel // 2
    x = builder.layer(f"{name}_conv", OpKind.CONV,
                      nn.Conv2d(in_channels, out_channels, kernel, stride=stride,
                                padding=padding, rng=rng), x)
    x = builder.layer(f"{name}_bn", OpKind.BATCHNORM, nn.BatchNorm2d(out_channels), x)
    return builder.layer(f"{name}_relu6", OpKind.RELU6, nn.ReLU6(), x)


def _depthwise_separable(builder: GraphBuilder, x: str, name: str, in_channels: int,
                         out_channels: int, rng: np.random.Generator, stride: int,
                         spread: float) -> str:
    depthwise = nn.DepthwiseConv2d(in_channels, 3, stride=stride, padding=1, rng=rng)
    bn = nn.BatchNorm2d(in_channels)
    _spread_depthwise_channels(depthwise, bn, rng, spread)
    x = builder.layer(f"{name}_dw", OpKind.DEPTHWISE_CONV, depthwise, x)
    x = builder.layer(f"{name}_dw_bn", OpKind.BATCHNORM, bn, x)
    x = builder.layer(f"{name}_dw_relu6", OpKind.RELU6, nn.ReLU6(), x)
    return _conv_bn_relu6(builder, x, f"{name}_pw", in_channels, out_channels, rng, kernel=1)


def mobilenet_v1_nano(num_classes: int = 10, in_channels: int = 3, base_width: int = 8,
                      channel_range_spread: float = 8.0, seed: int = 0) -> GraphIR:
    """MobileNet v1 analogue: a stem conv followed by depthwise-separable blocks."""
    rng = np.random.default_rng(seed)
    builder = GraphBuilder("mobilenet_v1_nano")
    x = builder.input("input")
    x = _conv_bn_relu6(builder, x, "stem", in_channels, base_width, rng, stride=1)
    configuration = [
        (base_width, base_width * 2, 1),
        (base_width * 2, base_width * 2, 2),
        (base_width * 2, base_width * 4, 1),
        (base_width * 4, base_width * 4, 2),
    ]
    for i, (cin, cout, stride) in enumerate(configuration, start=1):
        x = _depthwise_separable(builder, x, f"dws{i}", cin, cout, rng, stride,
                                 channel_range_spread)
    channels = configuration[-1][1]
    x = builder.layer("gap", OpKind.GLOBAL_AVGPOOL, nn.GlobalAvgPool2d(keepdims=False), x)
    x = builder.layer("flatten", OpKind.FLATTEN, nn.Flatten(), x)
    x = builder.layer("fc", OpKind.LINEAR, nn.Linear(channels, num_classes, rng=rng), x)
    return builder.build(x)


def _inverted_residual(builder: GraphBuilder, x: str, name: str, in_channels: int,
                       out_channels: int, expansion: int, stride: int,
                       rng: np.random.Generator, spread: float) -> str:
    hidden = in_channels * expansion
    y = _conv_bn_relu6(builder, x, f"{name}_expand", in_channels, hidden, rng, kernel=1)
    depthwise = nn.DepthwiseConv2d(hidden, 3, stride=stride, padding=1, rng=rng)
    bn = nn.BatchNorm2d(hidden)
    _spread_depthwise_channels(depthwise, bn, rng, spread)
    y = builder.layer(f"{name}_dw", OpKind.DEPTHWISE_CONV, depthwise, y)
    y = builder.layer(f"{name}_dw_bn", OpKind.BATCHNORM, bn, y)
    y = builder.layer(f"{name}_dw_relu6", OpKind.RELU6, nn.ReLU6(), y)
    # Linear bottleneck: projection conv has no activation.
    y = builder.layer(f"{name}_project_conv", OpKind.CONV,
                      nn.Conv2d(hidden, out_channels, 1, rng=rng), y)
    y = builder.layer(f"{name}_project_bn", OpKind.BATCHNORM, nn.BatchNorm2d(out_channels), y)
    if stride == 1 and in_channels == out_channels:
        return builder.add(f"{name}_add", y, x)
    return y


def mobilenet_v2_nano(num_classes: int = 10, in_channels: int = 3, base_width: int = 8,
                      channel_range_spread: float = 8.0, seed: int = 0) -> GraphIR:
    """MobileNet v2 analogue: inverted residual blocks with linear bottlenecks."""
    rng = np.random.default_rng(seed)
    builder = GraphBuilder("mobilenet_v2_nano")
    x = builder.input("input")
    x = _conv_bn_relu6(builder, x, "stem", in_channels, base_width, rng, stride=1)
    configuration = [
        (base_width, base_width, 2, 1),
        (base_width, base_width * 2, 2, 2),
        (base_width * 2, base_width * 2, 2, 1),
        (base_width * 2, base_width * 4, 2, 2),
    ]
    for i, (cin, cout, expansion, stride) in enumerate(configuration, start=1):
        x = _inverted_residual(builder, x, f"ir{i}", cin, cout, expansion, stride, rng,
                               channel_range_spread)
    channels = configuration[-1][1]
    x = _conv_bn_relu6(builder, x, "head", channels, channels * 2, rng, kernel=1)
    x = builder.layer("gap", OpKind.GLOBAL_AVGPOOL, nn.GlobalAvgPool2d(keepdims=False), x)
    x = builder.layer("flatten", OpKind.FLATTEN, nn.Flatten(), x)
    x = builder.layer("fc", OpKind.LINEAR, nn.Linear(channels * 2, num_classes, rng=rng), x)
    return builder.build(x)
