"""A small LeNet-style CNN used by the quickstart example and fast tests."""

from __future__ import annotations

import numpy as np

from .. import nn
from ..graph import GraphBuilder, GraphIR, OpKind

__all__ = ["lenet_nano"]


def lenet_nano(num_classes: int = 10, in_channels: int = 3, image_size: int = 16,
               seed: int = 0) -> GraphIR:
    """Two conv blocks plus a classifier; the smallest network in the zoo."""
    rng = np.random.default_rng(seed)
    builder = GraphBuilder("lenet_nano")
    x = builder.input("input")
    x = builder.layer("conv1", OpKind.CONV, nn.Conv2d(in_channels, 8, 3, padding=1, rng=rng), x)
    x = builder.layer("bn1", OpKind.BATCHNORM, nn.BatchNorm2d(8), x)
    x = builder.layer("relu1", OpKind.RELU, nn.ReLU(), x)
    x = builder.layer("pool1", OpKind.MAXPOOL, nn.MaxPool2d(2), x)
    x = builder.layer("conv2", OpKind.CONV, nn.Conv2d(8, 16, 3, padding=1, rng=rng), x)
    x = builder.layer("bn2", OpKind.BATCHNORM, nn.BatchNorm2d(16), x)
    x = builder.layer("relu2", OpKind.RELU, nn.ReLU(), x)
    x = builder.layer("pool2", OpKind.MAXPOOL, nn.MaxPool2d(2), x)
    x = builder.layer("gap", OpKind.GLOBAL_AVGPOOL, nn.GlobalAvgPool2d(keepdims=False), x)
    x = builder.layer("flatten", OpKind.FLATTEN, nn.Flatten(), x)
    x = builder.layer("fc", OpKind.LINEAR, nn.Linear(16, num_classes, rng=rng), x)
    return builder.build(x)
