"""Registry entry point for compiled integer inference (legacy shim).

The compile pipeline (build → Graffitist transforms → static TQT
quantization → integer lowering → optimizer passes → bind) now lives behind
the unified deployment API in :mod:`repro.deploy`; this module keeps the
original entry point and result type working:

* :class:`CompiledModel` — the compile result bundle (still the canonical
  container; :class:`repro.deploy.Deployment` wraps one for fresh compiles).
* :func:`compile_registry_model` — **deprecated** thin shim over
  :func:`repro.deploy.compile`.  Same kwargs, same return type, same
  bit-exact output codes; new code should call ``repro.deploy.compile``
  and get a :class:`~repro.deploy.Deployment` (which adds ``save``/``load``
  plan artifacts, ``runner(workers=N)`` and ``serve(ServeConfig)``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..engine.plan import CompiledEngine, ExecutionPlan
from ..graph import QuantizedModel
from ..quant.config import LayerPrecision
from .registry import ModelSpec

__all__ = ["CompiledModel", "compile_registry_model"]


@dataclass
class CompiledModel:
    """A statically quantized registry model plus its compiled integer engine."""

    spec: ModelSpec
    quantized: QuantizedModel
    plan: ExecutionPlan
    engine: CompiledEngine
    calibration_batches: list[np.ndarray]
    image_size: int
    num_classes: int
    #: optimizer pass report when the plan went through ``optimize_plan``
    optimization: dict | None = None

    @property
    def graph(self):
        """The fake-quant simulation graph the engine was lowered from."""
        return self.quantized.graph


def compile_registry_model(name: str, *, num_classes: int = 10,
                           image_size: int | None = None, batch_size: int = 8,
                           calibration_samples: int = 16,
                           calibration_batch_size: int = 8,
                           sequential_calibration: bool = False,
                           precision: LayerPrecision | None = None,
                           accumulate: str = "blas", seed: int = 0,
                           optimize: bool = True, autotune: bool = True,
                           **model_kwargs) -> CompiledModel:
    """Deprecated: use :func:`repro.deploy.compile` with a ``CompileConfig``.

    Thin shim kept for existing call sites.  The flat kwargs are routed into
    the typed config (``batch_size``/``accumulate`` → ``RuntimeConfig``,
    calibration knobs/``precision``/``seed`` → ``QuantConfig``) and the
    compile runs through the deployment pipeline; the returned
    :class:`CompiledModel` is identical to what this function built before.
    """
    warnings.warn(
        "compile_registry_model is deprecated; use repro.deploy.compile("
        "name, CompileConfig(...)) — it returns a Deployment whose .compiled "
        "attribute is this CompiledModel",
        DeprecationWarning, stacklevel=2)
    from ..deploy import compile as deploy_compile
    deployment = deploy_compile(
        name, num_classes=num_classes, image_size=image_size,
        batch_size=batch_size, calibration_samples=calibration_samples,
        calibration_batch_size=calibration_batch_size,
        sequential_calibration=sequential_calibration, precision=precision,
        accumulate=accumulate, seed=seed, optimize=optimize, autotune=autotune,
        **model_kwargs)
    return deployment.compiled
