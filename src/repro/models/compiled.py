"""Registry entry point for compiled integer inference.

Goes from a registry name to a servable integer engine in one call:
build the FP32 graph, run the Graffitist optimization transforms, statically
quantize it (TQT power-of-2 thresholds, KL-J activation calibration), lower
the quantized graph to an integer execution plan and bind it to a batch
shape.  The returned bundle keeps the fake-quant simulation graph around so
callers can benchmark and parity-check the two execution paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import SyntheticImageNet, sample_calibration_batches
from ..engine.optimizer import optimize_plan
from ..engine.plan import CompiledEngine, ExecutionPlan, lower_graph
from ..graph import QuantizedModel, quantize_static, transforms
from ..quant.config import LayerPrecision
from .inception import avgpool_channel_hints
from .registry import MODEL_REGISTRY, ModelSpec, available_models

__all__ = ["CompiledModel", "compile_registry_model"]


@dataclass
class CompiledModel:
    """A statically quantized registry model plus its compiled integer engine."""

    spec: ModelSpec
    quantized: QuantizedModel
    plan: ExecutionPlan
    engine: CompiledEngine
    calibration_batches: list[np.ndarray]
    image_size: int
    num_classes: int
    #: optimizer pass report when the plan went through ``optimize_plan``
    optimization: dict | None = None

    @property
    def graph(self):
        """The fake-quant simulation graph the engine was lowered from."""
        return self.quantized.graph


def compile_registry_model(name: str, *, num_classes: int = 10,
                           image_size: int | None = None, batch_size: int = 8,
                           calibration_samples: int = 16,
                           calibration_batch_size: int = 8,
                           sequential_calibration: bool = False,
                           precision: LayerPrecision | None = None,
                           accumulate: str = "blas", seed: int = 0,
                           optimize: bool = True, autotune: bool = True,
                           **model_kwargs) -> CompiledModel:
    """Build, quantize and compile a registry model for integer inference.

    ``image_size`` defaults to the registry spec's input size.  Calibration
    uses synthetic validation images, matching the repo's static-quantization
    flow; ``sequential_calibration=False`` trades the paper's strict
    layer-by-layer procedure for speed (the engine is bit-exact either way —
    parity is against the resulting fake-quant graph, not the calibration
    recipe).

    ``optimize`` runs the plan optimizer pass pipeline (epilogue fusion,
    weight prepacking, im2col elimination, backend autotuning) before
    binding; the optimized plan is bit-exact against the unoptimized one.
    ``autotune=False`` keeps the optimizer's default kernel variants and
    skips the bind-time micro-profiling.
    """
    try:
        spec = MODEL_REGISTRY[name]
    except KeyError as exc:
        raise ValueError(f"unknown model {name!r}; available: {available_models()}") from exc
    image_size = image_size if image_size is not None else spec.input_size

    graph = spec.build(num_classes=num_classes, seed=seed, **model_kwargs)
    graph.eval()
    transforms.run_default_optimizations(graph, channel_hints=avgpool_channel_hints(graph))

    dataset = SyntheticImageNet(num_classes=num_classes, image_size=image_size,
                                train_size=calibration_samples,
                                val_size=max(calibration_samples, calibration_batch_size),
                                seed=seed)
    calibration = sample_calibration_batches(dataset, num_samples=calibration_samples,
                                             batch_size=calibration_batch_size, seed=seed)
    quantized = quantize_static(graph, calibration, precision=precision,
                                sequential=sequential_calibration, copy=False)

    plan = lower_graph(quantized.graph)
    optimization = None
    if optimize:
        plan = optimize_plan(plan, autotune=autotune)
        optimization = plan.report.to_dict()
    engine = plan.bind((batch_size, spec.in_channels, image_size, image_size),
                       accumulate=accumulate)
    return CompiledModel(spec=spec, quantized=quantized, plan=plan, engine=engine,
                         calibration_batches=calibration, image_size=image_size,
                         num_classes=num_classes, optimization=optimization)
