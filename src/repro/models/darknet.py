"""Scaled-down DarkNet-19 style network (conv/BN/leaky-ReLU stacks).

DarkNet is the other "hard" network of Table 3; its leaky-ReLU activations
exercise the dedicated 16-bit-internal quantization topology of Section 4.3.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..graph import GraphBuilder, GraphIR, OpKind

__all__ = ["darknet_nano"]


def _conv_bn_leaky(builder: GraphBuilder, x: str, name: str, in_channels: int,
                   out_channels: int, rng: np.random.Generator, kernel: int = 3) -> str:
    padding = kernel // 2
    x = builder.layer(f"{name}_conv", OpKind.CONV,
                      nn.Conv2d(in_channels, out_channels, kernel, padding=padding, rng=rng), x)
    x = builder.layer(f"{name}_bn", OpKind.BATCHNORM, nn.BatchNorm2d(out_channels), x)
    return builder.layer(f"{name}_leaky", OpKind.LEAKY_RELU, nn.LeakyReLU(0.1), x)


def darknet_nano(num_classes: int = 10, in_channels: int = 3, base_width: int = 8,
                 seed: int = 0) -> GraphIR:
    """DarkNet-19 analogue: three leaky-ReLU conv stages with 1x1 bottlenecks."""
    rng = np.random.default_rng(seed)
    builder = GraphBuilder("darknet_nano")
    x = builder.input("input")
    x = _conv_bn_leaky(builder, x, "stage1", in_channels, base_width, rng)
    x = builder.layer("pool1", OpKind.MAXPOOL, nn.MaxPool2d(2), x)
    x = _conv_bn_leaky(builder, x, "stage2a", base_width, base_width * 2, rng)
    x = _conv_bn_leaky(builder, x, "stage2b", base_width * 2, base_width, rng, kernel=1)
    x = _conv_bn_leaky(builder, x, "stage2c", base_width, base_width * 2, rng)
    x = builder.layer("pool2", OpKind.MAXPOOL, nn.MaxPool2d(2), x)
    x = _conv_bn_leaky(builder, x, "stage3a", base_width * 2, base_width * 4, rng)
    x = _conv_bn_leaky(builder, x, "stage3b", base_width * 4, base_width * 2, rng, kernel=1)
    x = _conv_bn_leaky(builder, x, "stage3c", base_width * 2, base_width * 4, rng)
    x = builder.layer("gap", OpKind.GLOBAL_AVGPOOL, nn.GlobalAvgPool2d(keepdims=False), x)
    x = builder.layer("flatten", OpKind.FLATTEN, nn.Flatten(), x)
    x = builder.layer("fc", OpKind.LINEAR, nn.Linear(base_width * 4, num_classes, rng=rng), x)
    return builder.build(x)
