"""Scaled-down Inception-style networks (parallel branches + concat).

The inception module exercises two graph features the quantizer must handle:
channel concatenation (whose input scales are merged so the op is lossless,
Section 4.3) and an average-pool branch (rewritten to a reciprocal depthwise
convolution by the graph transform of Section 4.1).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..graph import GraphBuilder, GraphIR, OpKind

__all__ = ["inception_nano", "inception_nano_deep", "avgpool_channel_hints"]


def _conv_bn_relu(builder: GraphBuilder, x: str, name: str, in_channels: int,
                  out_channels: int, rng: np.random.Generator, kernel: int = 3,
                  stride: int = 1) -> str:
    padding = kernel // 2
    x = builder.layer(f"{name}_conv", OpKind.CONV,
                      nn.Conv2d(in_channels, out_channels, kernel, stride=stride,
                                padding=padding, rng=rng), x)
    x = builder.layer(f"{name}_bn", OpKind.BATCHNORM, nn.BatchNorm2d(out_channels), x)
    return builder.layer(f"{name}_relu", OpKind.RELU, nn.ReLU(), x)


def _inception_block(builder: GraphBuilder, x: str, name: str, in_channels: int,
                     branch_channels: int, rng: np.random.Generator,
                     avgpool_hints: dict[str, int]) -> tuple[str, int]:
    """Four branches: 1x1, 3x3, 5x5 (as stacked 3x3), and avgpool + 1x1."""
    b1 = _conv_bn_relu(builder, x, f"{name}_b1", in_channels, branch_channels, rng, kernel=1)
    b2 = _conv_bn_relu(builder, x, f"{name}_b2a", in_channels, branch_channels, rng, kernel=1)
    b2 = _conv_bn_relu(builder, b2, f"{name}_b2b", branch_channels, branch_channels, rng, kernel=3)
    b3 = _conv_bn_relu(builder, x, f"{name}_b3a", in_channels, branch_channels, rng, kernel=1)
    b3 = _conv_bn_relu(builder, b3, f"{name}_b3b", branch_channels, branch_channels, rng, kernel=3)
    b3 = _conv_bn_relu(builder, b3, f"{name}_b3c", branch_channels, branch_channels, rng, kernel=3)
    pool_name = f"{name}_b4_pool"
    b4 = builder.layer(pool_name, OpKind.AVGPOOL, nn.AvgPool2d(3, stride=1, padding=1), x)
    avgpool_hints[pool_name] = in_channels
    b4 = _conv_bn_relu(builder, b4, f"{name}_b4", in_channels, branch_channels, rng, kernel=1)
    out = builder.concat(f"{name}_concat", [b1, b2, b3, b4], axis=1)
    return out, branch_channels * 4


def _build_inception(name: str, num_blocks: int, num_classes: int, in_channels: int,
                     base_width: int, seed: int) -> tuple[GraphIR, dict[str, int]]:
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(name)
    avgpool_hints: dict[str, int] = {}
    x = builder.input("input")
    x = _conv_bn_relu(builder, x, "stem", in_channels, base_width, rng)
    x = builder.layer("stem_pool", OpKind.MAXPOOL, nn.MaxPool2d(2), x)
    channels = base_width
    for block in range(num_blocks):
        x, channels = _inception_block(builder, x, f"mixed{block + 1}", channels,
                                       base_width, rng, avgpool_hints)
    x = builder.layer("gap", OpKind.GLOBAL_AVGPOOL, nn.GlobalAvgPool2d(keepdims=False), x)
    x = builder.layer("flatten", OpKind.FLATTEN, nn.Flatten(), x)
    x = builder.layer("fc", OpKind.LINEAR, nn.Linear(channels, num_classes, rng=rng), x)
    graph = builder.build(x)
    graph.avgpool_channel_hints = avgpool_hints  # used by the avgpool transform
    return graph, avgpool_hints


def inception_nano(num_classes: int = 10, in_channels: int = 3, base_width: int = 8,
                   seed: int = 0) -> GraphIR:
    """Inception v1/v2 analogue: two inception blocks."""
    graph, _ = _build_inception("inception_nano", 2, num_classes, in_channels, base_width, seed)
    return graph


def inception_nano_deep(num_classes: int = 10, in_channels: int = 3, base_width: int = 8,
                        seed: int = 0) -> GraphIR:
    """Inception v3/v4 analogue: three inception blocks."""
    graph, _ = _build_inception("inception_nano_deep", 3, num_classes, in_channels,
                                base_width, seed)
    return graph


def avgpool_channel_hints(graph: GraphIR) -> dict[str, int]:
    """Channel hints for the avgpool->depthwise transform, if the model recorded them."""
    return getattr(graph, "avgpool_channel_hints", {})
