"""Scaled-down VGG-style networks (plain conv/BN/ReLU stacks with max pools).

VGG-16/19 are the "easy to quantize" end of the paper's network suite
(Table 3): no depthwise convolutions, well-behaved weight ranges, so static
INT8 already comes close to FP32 and wt-only retraining closes the gap.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..graph import GraphBuilder, GraphIR, OpKind

__all__ = ["vgg_nano", "vgg_nano_deep"]


def _vgg_stack(builder: GraphBuilder, x: str, prefix: str, in_channels: int,
               out_channels: int, convs: int, rng: np.random.Generator) -> tuple[str, int]:
    for i in range(convs):
        channels_in = in_channels if i == 0 else out_channels
        x = builder.layer(f"{prefix}_conv{i + 1}", OpKind.CONV,
                          nn.Conv2d(channels_in, out_channels, 3, padding=1, rng=rng), x)
        x = builder.layer(f"{prefix}_bn{i + 1}", OpKind.BATCHNORM,
                          nn.BatchNorm2d(out_channels), x)
        x = builder.layer(f"{prefix}_relu{i + 1}", OpKind.RELU, nn.ReLU(), x)
    x = builder.layer(f"{prefix}_pool", OpKind.MAXPOOL, nn.MaxPool2d(2), x)
    return x, out_channels


def _build_vgg(name: str, stage_convs: list[int], num_classes: int, in_channels: int,
               base_width: int, seed: int) -> GraphIR:
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(name)
    x = builder.input("input")
    channels = in_channels
    width = base_width
    for stage, convs in enumerate(stage_convs, start=1):
        x, channels = _vgg_stack(builder, x, f"stage{stage}", channels, width, convs, rng)
        width = min(width * 2, base_width * 4)
    x = builder.layer("gap", OpKind.GLOBAL_AVGPOOL, nn.GlobalAvgPool2d(keepdims=False), x)
    x = builder.layer("flatten", OpKind.FLATTEN, nn.Flatten(), x)
    x = builder.layer("fc1", OpKind.LINEAR, nn.Linear(channels, channels, rng=rng), x)
    x = builder.layer("fc1_relu", OpKind.RELU, nn.ReLU(), x)
    x = builder.layer("dropout", OpKind.DROPOUT, nn.Identity(), x)
    x = builder.layer("fc2", OpKind.LINEAR, nn.Linear(channels, num_classes, rng=rng), x)
    return builder.build(x)


def vgg_nano(num_classes: int = 10, in_channels: int = 3, base_width: int = 8,
             seed: int = 0) -> GraphIR:
    """VGG-16 analogue: three stages of two convolutions each."""
    return _build_vgg("vgg_nano", [2, 2, 2], num_classes, in_channels, base_width, seed)


def vgg_nano_deep(num_classes: int = 10, in_channels: int = 3, base_width: int = 8,
                  seed: int = 0) -> GraphIR:
    """VGG-19 analogue: three stages with three convolutions each."""
    return _build_vgg("vgg_nano_deep", [2, 3, 3], num_classes, in_channels, base_width, seed)
