"""Deterministic fault injection: typed errors, fault events, seeded plans.

A serving system's failure behavior is part of its contract, so it must be
*testable* the way throughput is: reproducibly.  This module defines the
fault plane the fleet server and the process backend share:

* a typed error hierarchy (:class:`FaultError` and friends) so callers can
  distinguish "the worker process died" from "the task raised" from "the
  recv deadline fired" and supervise each differently;
* :class:`FaultEvent` / :class:`FaultPlan` — a declarative, picklable
  schedule of induced failures addressed in **worker-task coordinates**
  (worker *w*'s *k*-th executed task), which makes a chaos run exactly
  reproducible on both the virtual and the wall clock and on both the
  thread and the process backend: the coordinates depend only on dispatch
  order, never on timing;
* :class:`FaultInjector` — the runtime consumer of a plan.  The parent
  process polls it in the virtual loop and the thread backend; each worker
  process builds its own injector from the (pickled) plan, offset by the
  number of tasks the previous incarnation already consumed, so a respawned
  worker never re-fires an event that already happened.

Fault kinds:

``worker_crash``
    The worker process dies mid-task (``os._exit``); on the thread backend
    and the virtual clock the same event raises :class:`InjectedFault` with
    ``kind="worker_crash"`` so supervision logic is exercised identically.
``task_hang``
    The task stalls for ``duration_s`` — long enough to trip the parent's
    recv deadline on the process backend (:class:`WorkerTimeout`).
``task_error``
    The task fails with an exception instead of producing codes.
``slow_task``
    The task completes correctly but ``duration_s`` late (gray failure:
    outputs stay bit-identical, only latency suffers).
``artifact_corrupt``
    A disk-tier ``.rpa`` artifact is corrupted before serving starts,
    exercising the plan cache's quarantine + recompile path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from threading import Lock

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "FaultError",
    "InjectedFault",
    "WorkerCrashed",
    "WorkerTimeout",
    "TaskFailed",
    "RespawnExhausted",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
]

FAULT_KINDS = ("worker_crash", "task_hang", "task_error", "slow_task",
               "artifact_corrupt")

#: fault kinds matched against executed tasks by the injector (artifact
#: corruption happens once, before serving, outside task coordinates)
_TASK_KINDS = ("worker_crash", "task_hang", "task_error", "slow_task")


# ---------------------------------------------------------------------- #
# Typed errors
# ---------------------------------------------------------------------- #
class FaultError(RuntimeError):
    """Base class for fleet fault conditions the supervisor can recover."""

    #: canonical fault kind for metrics/trace labeling
    kind = "fault"


class WorkerCrashed(FaultError):
    """A worker process died (its ``Process`` is no longer alive) mid-task."""

    kind = "worker_crash"


class WorkerTimeout(FaultError):
    """No result arrived within the per-task recv deadline (hung task)."""

    kind = "task_hang"


class TaskFailed(FaultError):
    """The worker stayed alive but replied with a task-level error."""

    kind = "task_error"

    def __init__(self, message: str, reason: str = "task") -> None:
        super().__init__(message)
        #: "task" for a genuine worker-side exception, "task_error" for an
        #: injected one — both supervise identically
        self.reason = reason


class InjectedFault(FaultError):
    """A planned fault fired on an in-process execution path."""

    def __init__(self, event: "FaultEvent") -> None:
        super().__init__(f"injected fault {event.kind!r} "
                         f"(worker={event.worker}, task={event.task_index}, "
                         f"model={event.model})")
        self.event = event
        self.kind = event.kind


class RespawnExhausted(FaultError):
    """A worker kept dying past its bounded respawn budget."""

    kind = "respawn_exhausted"


# ---------------------------------------------------------------------- #
# Plans
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class FaultEvent:
    """One induced failure, addressed in worker-task coordinates.

    ``worker=None`` matches any worker; ``model=None`` matches any model.
    ``task_index`` is the matching worker's k-th *executed* task (0-based,
    counted per worker across its whole lifetime, respawns included); with
    ``task_index=None`` the event fires on the next matching task,
    ``count`` times in total — the "poison this model" spelling that feeds
    circuit-breaker tests.  ``duration_s`` is the stall for ``task_hang`` /
    ``slow_task`` events and ignored otherwise.
    """

    kind: str
    worker: int | None = None
    task_index: int | None = None
    model: str | None = None
    duration_s: float = 0.05
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"available: {list(FAULT_KINDS)}")
        if self.duration_s < 0:
            raise ValueError(f"duration_s must be >= 0, got {self.duration_s}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.kind == "artifact_corrupt" and self.model is None:
            raise ValueError("artifact_corrupt events must name a model")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "worker": self.worker,
                "task_index": self.task_index, "model": self.model,
                "duration_s": self.duration_s, "count": self.count}


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of :class:`FaultEvent` s (plus its seed).

    Plans are plain frozen dataclasses so they pickle across the spawn
    boundary into worker processes unchanged.  ``seed`` is carried for
    reporting; :meth:`seeded` derives the whole schedule from it.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"events must be FaultEvent instances, "
                                f"got {type(event).__name__}")

    @classmethod
    def seeded(cls, seed: int, *, workers: int, horizon_tasks: int = 16,
               crash_rate: float = 0.0, hang_rate: float = 0.0,
               error_rate: float = 0.0, slow_rate: float = 0.0,
               hang_s: float = 30.0, slow_s: float = 0.01) -> "FaultPlan":
        """Draw a deterministic schedule over a worker-task grid.

        Each of ``workers * horizon_tasks`` (worker, task) cells
        independently draws one fault with the given per-kind rates
        (crash wins over hang over error over slow when rates overlap).
        The same seed always yields the same plan.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if horizon_tasks < 1:
            raise ValueError(f"horizon_tasks must be >= 1, got {horizon_tasks}")
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        for worker in range(workers):
            for task in range(horizon_tasks):
                draw = float(rng.random())
                if draw < crash_rate:
                    events.append(FaultEvent("worker_crash", worker=worker,
                                             task_index=task))
                elif draw < crash_rate + hang_rate:
                    events.append(FaultEvent("task_hang", worker=worker,
                                             task_index=task,
                                             duration_s=hang_s))
                elif draw < crash_rate + hang_rate + error_rate:
                    events.append(FaultEvent("task_error", worker=worker,
                                             task_index=task))
                elif draw < crash_rate + hang_rate + error_rate + slow_rate:
                    events.append(FaultEvent("slow_task", worker=worker,
                                             task_index=task,
                                             duration_s=slow_s))
        return cls(events=tuple(events), seed=seed)

    def injector(self, *, worker: int | None = None,
                 task_offset: int = 0) -> "FaultInjector":
        """Runtime consumer of this plan (see :class:`FaultInjector`)."""
        return FaultInjector(self, worker=worker, task_offset=task_offset)

    def for_worker(self, worker: int) -> "FaultPlan":
        """The sub-plan relevant to one worker (events it could fire)."""
        return replace(self, events=tuple(
            e for e in self.events
            if e.worker is None or e.worker == worker))

    @property
    def artifact_events(self) -> tuple[FaultEvent, ...]:
        return tuple(e for e in self.events if e.kind == "artifact_corrupt")

    def to_dict(self) -> dict:
        return {"seed": self.seed,
                "events": [e.to_dict() for e in self.events]}


@dataclass
class _Slot:
    event: FaultEvent
    remaining: int = field(default=0)

    def __post_init__(self) -> None:
        self.remaining = self.event.count


class FaultInjector:
    """Thread-safe runtime matcher: consumes plan events against tasks.

    ``poll(worker, model)`` is called once per executed task (before
    execution); it advances the worker's task counter and returns the
    matching :class:`FaultEvent` to apply, or ``None``.  Events with an
    explicit ``task_index`` fire exactly at that ordinal; events without
    one fire on the next matching task, ``count`` times.  ``task_offset``
    pre-advances one worker's counter — a respawned worker process resumes
    counting where its predecessor stopped, so consumed events never
    re-fire.
    """

    def __init__(self, plan: FaultPlan, *, worker: int | None = None,
                 task_offset: int = 0) -> None:
        self.plan = plan
        self._slots = [_Slot(e) for e in plan.events
                       if e.kind in _TASK_KINDS
                       and (worker is None or e.worker is None
                            or e.worker == worker)]
        self._counts: dict[int, int] = {}
        if worker is not None and task_offset:
            self._counts[worker] = int(task_offset)
        self._lock = Lock()
        self.injected: dict[str, int] = {}
        self.polled = 0

    def poll(self, worker: int, model: str | None = None) -> FaultEvent | None:
        """Advance ``worker``'s task counter; return the event to apply."""
        with self._lock:
            index = self._counts.get(worker, 0)
            self._counts[worker] = index + 1
            self.polled += 1
            for slot in self._slots:
                event = slot.event
                if slot.remaining <= 0:
                    continue
                if event.worker is not None and event.worker != worker:
                    continue
                if (event.model is not None and model is not None
                        and event.model != model):
                    continue
                if event.task_index is not None and event.task_index != index:
                    continue
                slot.remaining -= 1
                self.injected[event.kind] = self.injected.get(event.kind, 0) + 1
                return event
            return None

    def stats(self) -> dict:
        """JSON-serializable injection counters for the serving report."""
        with self._lock:
            pending = sum(s.remaining for s in self._slots)
            return {"seed": self.plan.seed,
                    "events": len(self.plan.events),
                    "polled": self.polled,
                    "injected": dict(self.injected),
                    "pending": pending}
