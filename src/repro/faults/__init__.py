"""Deterministic fault injection and resilience policies for the fleet.

The fault plane has three layers, threaded through the serving stack:

* **Injection** (:class:`FaultPlan` / :class:`FaultInjector`): a seeded,
  picklable schedule of ``worker_crash`` / ``task_hang`` / ``task_error`` /
  ``slow_task`` / ``artifact_corrupt`` events addressed in worker-task
  coordinates, so a chaos run replays identically on the virtual and the
  wall clock and on the thread and the process backend.
* **Supervision** (:mod:`repro.serving.procfleet`): per-task recv
  deadlines, ``Process.is_alive()`` liveness checks, typed
  :class:`WorkerCrashed` / :class:`WorkerTimeout` errors, and bounded
  worker respawn with exponential backoff.
* **Resilience policy** (:class:`RetryPolicy`, :class:`CircuitBreaker`):
  request retries with attempt/deadline budgets, per-model rolling-window
  circuit breakers shedding fast at admission, and graceful degradation
  from the process to the thread backend for persistently failing models.

Wire it up with ``ServeConfig(faults=..., retry=..., breaker=...)`` or the
same keyword arguments on :class:`repro.serving.FleetServer`.
"""

from .plan import (
    FAULT_KINDS,
    FaultError,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    RespawnExhausted,
    TaskFailed,
    WorkerCrashed,
    WorkerTimeout,
)
from .policy import BreakerPolicy, CircuitBreaker, RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "RespawnExhausted",
    "TaskFailed",
    "WorkerCrashed",
    "WorkerTimeout",
    "BreakerPolicy",
    "CircuitBreaker",
    "RetryPolicy",
]
