"""Request-level resilience: retry policy and per-model circuit breakers.

:class:`RetryPolicy` bounds how hard the fleet fights for one request
(attempts, backoff, an end-to-end deadline) and how hard it fights for one
worker (bounded respawns with exponential backoff, a per-task recv
deadline, a degradation threshold).  :class:`CircuitBreaker` is the
fleet-level complement: a per-model rolling failure-rate window that stops
*queueing into* a sick model — requests shed fast at admission (reason
``"breaker"``) instead of piling onto an engine that keeps failing, and a
half-open probe lets the model earn its way back.

Both are deliberately clock-agnostic: every method takes ``now`` explicitly,
so the same objects drive the virtual discrete-event loop and wall-clock
serving and chaos runs stay deterministic on the virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from threading import Lock

__all__ = ["RetryPolicy", "BreakerPolicy", "CircuitBreaker"]


@dataclass(frozen=True)
class RetryPolicy:
    """How the fleet retries failed work and supervises failed workers.

    ``max_attempts`` counts *total* executions of a request (1 = never
    retry); a batch failure requeues its requests until their attempts or
    the ``deadline_ms`` budget (measured from arrival) run out, after which
    the request terminates with status ``"failed"``.  ``backoff_s`` (scaled
    by ``backoff_multiplier`` per consecutive failure of the same model)
    holds the model's queue back before the next attempt.

    Supervision knobs: ``task_timeout_s`` is the per-task recv deadline on
    the process backend (a hung worker trips :class:`WorkerTimeout` instead
    of blocking forever); ``max_respawns`` / ``respawn_backoff_s`` bound
    how often a crashed worker process is rebuilt; after ``degrade_after``
    consecutive process-backend failures on one model (or an exhausted
    respawn budget) the fleet falls back to in-process thread execution for
    that model and records the downgrade.
    """

    max_attempts: int = 2
    backoff_s: float = 0.0
    backoff_multiplier: float = 2.0
    deadline_ms: float | None = None
    task_timeout_s: float = 30.0
    max_respawns: int = 2
    respawn_backoff_s: float = 0.05
    degrade_after: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(f"backoff_multiplier must be >= 1, "
                             f"got {self.backoff_multiplier}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {self.deadline_ms}")
        if self.task_timeout_s <= 0:
            raise ValueError(f"task_timeout_s must be > 0, "
                             f"got {self.task_timeout_s}")
        if self.max_respawns < 0:
            raise ValueError(f"max_respawns must be >= 0, got {self.max_respawns}")
        if self.respawn_backoff_s < 0:
            raise ValueError(f"respawn_backoff_s must be >= 0, "
                             f"got {self.respawn_backoff_s}")
        if self.degrade_after < 1:
            raise ValueError(f"degrade_after must be >= 1, got {self.degrade_after}")

    def attempt_backoff_s(self, consecutive_failures: int) -> float:
        """Queue hold-back before the next attempt of a failing model."""
        if self.backoff_s == 0.0 or consecutive_failures <= 0:
            return 0.0
        return self.backoff_s * self.backoff_multiplier ** (consecutive_failures - 1)

    def exhausted(self, attempts: int, age_s: float) -> bool:
        """True when a request with ``attempts`` executions ``age_s`` after
        arrival must terminate as failed instead of retrying."""
        if attempts >= self.max_attempts:
            return True
        return self.deadline_ms is not None and age_s * 1e3 > self.deadline_ms

    def to_dict(self) -> dict:
        return {"max_attempts": self.max_attempts,
                "backoff_s": self.backoff_s,
                "backoff_multiplier": self.backoff_multiplier,
                "deadline_ms": self.deadline_ms,
                "task_timeout_s": self.task_timeout_s,
                "max_respawns": self.max_respawns,
                "respawn_backoff_s": self.respawn_backoff_s,
                "degrade_after": self.degrade_after}


@dataclass(frozen=True)
class BreakerPolicy:
    """Rolling-window failure-rate thresholds for :class:`CircuitBreaker`."""

    window: int = 16            # batch outcomes kept per model
    failure_threshold: float = 0.5
    min_samples: int = 4        # outcomes required before the breaker can open
    cooldown_s: float = 0.25    # open -> half-open delay
    half_open_probes: int = 1   # successes required to close from half-open

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError(f"failure_threshold must be in (0, 1], "
                             f"got {self.failure_threshold}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")
        if self.cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {self.cooldown_s}")
        if self.half_open_probes < 1:
            raise ValueError(f"half_open_probes must be >= 1, "
                             f"got {self.half_open_probes}")

    def to_dict(self) -> dict:
        return {"window": self.window,
                "failure_threshold": self.failure_threshold,
                "min_samples": self.min_samples,
                "cooldown_s": self.cooldown_s,
                "half_open_probes": self.half_open_probes}


class _ModelBreaker:
    """Per-model state machine: closed -> open -> half-open -> closed."""

    __slots__ = ("state", "outcomes", "opened_at", "probe_successes",
                 "opens", "shed_fast", "transitions")

    def __init__(self) -> None:
        self.state = "closed"
        self.outcomes: list[bool] = []    # rolling window, True = success
        self.opened_at = 0.0
        self.probe_successes = 0
        self.opens = 0
        self.shed_fast = 0
        self.transitions: list[tuple[float, str, str]] = []

    def _move(self, now: float, state: str) -> None:
        self.transitions.append((round(float(now), 6), self.state, state))
        self.state = state


class CircuitBreaker:
    """Per-model circuit breakers over a rolling batch-outcome window.

    ``allow(model, now)`` gates admission: closed always admits; open sheds
    fast until ``cooldown_s`` has passed, then moves to half-open, which
    admits probe traffic.  ``record(model, ok, now)`` feeds batch outcomes:
    in half-open, one failure re-opens, ``half_open_probes`` successes
    close; in closed, the breaker opens when the rolling window holds at
    least ``min_samples`` outcomes with a failure rate at or above
    ``failure_threshold``.  All methods are thread-safe and clock-agnostic.
    """

    def __init__(self, policy: BreakerPolicy | None = None) -> None:
        self.policy = policy if policy is not None else BreakerPolicy()
        self._models: dict[str, _ModelBreaker] = {}
        self._lock = Lock()

    def _state(self, model: str) -> _ModelBreaker:
        breaker = self._models.get(model)
        if breaker is None:
            breaker = self._models[model] = _ModelBreaker()
        return breaker

    def allow(self, model: str, now: float) -> bool:
        with self._lock:
            breaker = self._state(model)
            if breaker.state == "open":
                if now - breaker.opened_at >= self.policy.cooldown_s:
                    breaker._move(now, "half_open")
                    breaker.probe_successes = 0
                    return True
                breaker.shed_fast += 1
                return False
            return True

    def record(self, model: str, ok: bool, now: float) -> None:
        with self._lock:
            breaker = self._state(model)
            breaker.outcomes.append(bool(ok))
            if len(breaker.outcomes) > self.policy.window:
                del breaker.outcomes[:-self.policy.window]
            if breaker.state == "half_open":
                if ok:
                    breaker.probe_successes += 1
                    if breaker.probe_successes >= self.policy.half_open_probes:
                        breaker._move(now, "closed")
                        breaker.outcomes.clear()
                else:
                    breaker._move(now, "open")
                    breaker.opened_at = now
                    breaker.opens += 1
                return
            if breaker.state == "closed" and not ok:
                window = breaker.outcomes
                failures = window.count(False)
                if (len(window) >= self.policy.min_samples
                        and failures / len(window)
                        >= self.policy.failure_threshold):
                    breaker._move(now, "open")
                    breaker.opened_at = now
                    breaker.opens += 1

    def state(self, model: str) -> str:
        with self._lock:
            breaker = self._models.get(model)
            return breaker.state if breaker is not None else "closed"

    def snapshot(self) -> dict:
        """JSON-serializable per-model breaker state for the serving report."""
        with self._lock:
            return {
                "policy": self.policy.to_dict(),
                "models": {
                    model: {
                        "state": breaker.state,
                        "opens": breaker.opens,
                        "shed_fast": breaker.shed_fast,
                        "window": list(breaker.outcomes),
                        "transitions": [list(t) for t in breaker.transitions],
                    }
                    for model, breaker in sorted(self._models.items())
                },
            }
