"""Quantized (re)training loop implementing the Section 5.2 recipe.

The trainer:

* puts weights and thresholds in separate Adam parameter groups with the
  paper's learning rates and exponential-staircase decay schedules;
* freezes batch-norm moving statistics after the configured number of
  epochs (the quantized graphs have BN folded, but the FP32 baseline runs
  use the same trainer, so the hook is honoured in both cases);
* incrementally freezes thresholds via :class:`repro.quant.ThresholdFreezer`;
* validates periodically, keeping the best top-1 checkpoint
  (:class:`repro.training.checkpoints.CheckpointKeeper`);
* records threshold trajectories so the Figure 5/6/10 analyses can report
  deviations ``d = Δ ceil(log2 t)`` per quantizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..autograd import Tensor, cross_entropy
from ..data import DataLoader
from ..graph import GraphIR, split_parameters, collect_tqt_quantizers
from ..nn import BatchNorm2d, l2_regularization
from ..optim import Adam, ParamGroup
from ..quant import FreezingPolicy, ThresholdFreezer
from .checkpoints import CheckpointKeeper
from .evaluator import Evaluator
from .hparams import PaperHyperparameters

__all__ = ["TrainingResult", "Trainer"]


@dataclass
class TrainingResult:
    """Summary of one training run."""

    best_top1: float
    best_top5: float
    best_epoch: float
    final_top1: float
    final_top5: float
    steps: int
    loss_history: list[float] = field(default_factory=list)
    checkpoints: CheckpointKeeper | None = None
    threshold_history: dict[str, list[float]] = field(default_factory=dict)
    initial_thresholds: dict[str, float] = field(default_factory=dict)
    final_thresholds: dict[str, float] = field(default_factory=dict)

    def threshold_deviations(self) -> dict[str, float]:
        """Per-quantizer deviation ``d = ceil(log2 t_final) - ceil(log2 t_init)``.

        Positive deviations mean the threshold moved out (range over
        precision); negative deviations mean it moved in (precision over
        range) — the quantity plotted in Figures 5, 6 and 10.
        """
        deviations = {}
        for name, initial in self.initial_thresholds.items():
            final = self.final_thresholds.get(name, initial)
            deviations[name] = float(np.ceil(final) - np.ceil(initial))
        return deviations


class Trainer:
    """Joint weight + threshold training on a global cross-entropy loss."""

    def __init__(self, model: GraphIR, train_loader: DataLoader, val_loader: DataLoader,
                 hparams: PaperHyperparameters | None = None,
                 track_thresholds: bool = False,
                 max_val_batches: int | None = None) -> None:
        self.model = model
        self.train_loader = train_loader
        self.val_loader = val_loader
        self.hparams = hparams or PaperHyperparameters(batch_size=train_loader.batch_size)
        self.track_thresholds = track_thresholds
        self.evaluator = Evaluator(val_loader, max_batches=max_val_batches)

        weights, thresholds = split_parameters(model)
        groups = []
        if weights:
            groups.append(ParamGroup(weights, lr=self.hparams.weight_lr,
                                     schedule=self.hparams.weight_schedule, name="weights",
                                     weight_decay=self.hparams.weight_decay))
        if thresholds:
            groups.append(ParamGroup(thresholds, lr=self.hparams.threshold_lr,
                                     schedule=self.hparams.threshold_schedule, name="thresholds"))
        self.optimizer = Adam(groups, lr=self.hparams.weight_lr,
                              beta1=self.hparams.beta1, beta2=self.hparams.beta2)

        trainable_quantizers = collect_tqt_quantizers(model, trainable_only=True)
        policy = FreezingPolicy.from_batch_size(self.hparams.batch_size,
                                                enabled=self.hparams.freeze_thresholds)
        self.freezer = ThresholdFreezer(trainable_quantizers, policy)
        self._all_quantizers = collect_tqt_quantizers(model)

    # ------------------------------------------------------------------ #
    def _thresholds_snapshot(self) -> dict[str, float]:
        return {name: float(np.asarray(q.log2_t.data).reshape(-1)[0])
                for name, q in self._all_quantizers.items()
                if q.log2_t.data.ndim == 0}

    def _freeze_batch_norms(self) -> None:
        for module in self.model.modules():
            if isinstance(module, BatchNorm2d):
                module.freeze_statistics()

    def train_step(self, images: np.ndarray, labels: np.ndarray) -> float:
        """One optimization step; returns the scalar loss."""
        self.model.train()
        logits = self.model(Tensor(images))
        loss = cross_entropy(logits, labels)
        if self.hparams.weight_decay > 0:
            weights, _ = split_parameters(self.model)
            loss = loss + l2_regularization(weights, self.hparams.weight_decay)
        self.optimizer.zero_grad()
        loss.backward()
        self.freezer.observe()
        self.optimizer.step()
        self.freezer.step(self.optimizer.step_count)
        return float(loss.data)

    def train(self, epochs: int | None = None) -> TrainingResult:
        """Run training for up to ``epochs`` (default: the recipe's max)."""
        epochs = epochs if epochs is not None else self.hparams.max_epochs
        steps_per_epoch = self.train_loader.steps_per_epoch
        validate_every = self.hparams.validate_every_steps or steps_per_epoch
        checkpoints = CheckpointKeeper()
        loss_history: list[float] = []
        threshold_history: dict[str, list[float]] = {name: [] for name in self._all_quantizers} \
            if self.track_thresholds else {}
        initial_thresholds = self._thresholds_snapshot()

        step = 0
        for epoch in range(epochs):
            if epoch == self.hparams.bn_freeze_epochs:
                self._freeze_batch_norms()
            for images, labels in self.train_loader:
                loss = self.train_step(images, labels)
                loss_history.append(loss)
                step += 1
                if self.track_thresholds:
                    snapshot = self._thresholds_snapshot()
                    for name, value in snapshot.items():
                        threshold_history[name].append(value)
                if step % validate_every == 0:
                    result = self.evaluator.evaluate(self.model)
                    checkpoints.update(step, step / steps_per_epoch, result,
                                       self.model.state_dict())

        final = self.evaluator.evaluate(self.model)
        if not checkpoints.history:
            checkpoints.update(step, step / max(steps_per_epoch, 1), final,
                               self.model.state_dict())
        final_thresholds = self._thresholds_snapshot()
        return TrainingResult(
            best_top1=checkpoints.best_top1,
            best_top5=checkpoints.best_top5,
            best_epoch=checkpoints.best_epoch,
            final_top1=final.top1,
            final_top5=final.top5,
            steps=step,
            loss_history=loss_history,
            checkpoints=checkpoints,
            threshold_history=threshold_history,
            initial_thresholds=initial_thresholds,
            final_thresholds=final_thresholds,
        )

    def restore_best(self, result: TrainingResult) -> None:
        """Load the best checkpoint of a finished run back into the model."""
        if result.checkpoints is None or result.checkpoints.best_state is None:
            raise ValueError("the training result has no recorded checkpoint")
        self.model.load_state_dict(result.checkpoints.best_state, strict=False)
