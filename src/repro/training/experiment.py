"""End-to-end experiment driver reproducing the Table 1 / Table 3 protocol.

For a given network the paper reports six trials:

1. FP32 baseline (pre-trained weights, validated as-is);
2. Static INT8 (calibrate-only, no retraining);
3. Retrain ``wt`` FP32 — weights fine-tuned with the same recipe, no
   quantization, the "fair baseline" for the retrain rows;
4. Retrain ``wt`` INT8 — weights fine-tuned with fixed calibrated thresholds;
5. Retrain ``wt,th`` INT8 — TQT: weights and thresholds trained jointly;
6. Retrain ``wt,th`` INT4 — same at 4-bit weights / 8-bit activations.

:class:`ExperimentRunner` performs these trials on the synthetic dataset
with a nano model, starting every quantized run from the same "pre-trained"
FP32 weights, exactly as in the paper (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..data import DataLoader, Preprocessor, SyntheticImageNet, sample_calibration_batches
from ..graph import GraphIR, clone_graph, prepare_retrain, quantize_static, transforms
from ..models import MODEL_REGISTRY, avgpool_channel_hints, build_model
from ..quant.config import INT4_PRECISION, INT8_PRECISION, LayerPrecision
from .evaluator import Evaluator
from .hparams import PaperHyperparameters
from .trainer import Trainer, TrainingResult

__all__ = ["TrialResult", "ExperimentConfig", "ExperimentRunner"]


@dataclass(frozen=True)
class TrialResult:
    """One row of a Table 1 / Table 3 style report."""

    model: str
    mode: str              # "fp32", "static", "retrain wt", "retrain wt,th"
    precision: str         # "FP32", "INT8", "INT4"
    bit_width: str         # "32/32", "8/8", "4/8"
    top1: float
    top5: float
    epochs: float = 0.0

    def as_row(self) -> tuple:
        return (self.mode, self.precision, self.bit_width,
                round(self.top1 * 100, 1), round(self.top5 * 100, 1), round(self.epochs, 1))


@dataclass
class ExperimentConfig:
    """Configuration of an experiment run (scaled-down Section 5 protocol)."""

    model: str = "mobilenet_v1_nano"
    num_classes: int = 10
    image_size: int = 16
    train_size: int = 256
    val_size: int = 96
    batch_size: int = 16
    noise_level: float = 0.35
    pretrain_epochs: int = 6
    retrain_epochs: int = 3
    calibration_samples: int = 50
    quant_method: str = "tqt"
    seed: int = 0
    hparams: PaperHyperparameters | None = None
    model_kwargs: dict = field(default_factory=dict)

    def make_hparams(self) -> PaperHyperparameters:
        if self.hparams is not None:
            return self.hparams
        return PaperHyperparameters(batch_size=self.batch_size, max_epochs=self.retrain_epochs)


class ExperimentRunner:
    """Runs the FP32 / static / retrain trials for one network."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config
        self.dataset = SyntheticImageNet(
            num_classes=config.num_classes, image_size=config.image_size,
            train_size=config.train_size, val_size=config.val_size,
            noise_level=config.noise_level, seed=config.seed,
        )
        preprocessor = Preprocessor()
        self.train_loader = DataLoader(self.dataset, self.dataset.train,
                                       batch_size=config.batch_size,
                                       preprocessor=preprocessor, seed=config.seed)
        self.val_loader = DataLoader(self.dataset, self.dataset.val,
                                     batch_size=config.batch_size, shuffle=False,
                                     preprocessor=preprocessor, seed=config.seed)
        self.calibration_batches = sample_calibration_batches(
            self.dataset, num_samples=config.calibration_samples,
            preprocessor=preprocessor, seed=config.seed,
        )
        self.evaluator = Evaluator(self.val_loader)
        self._pretrained: GraphIR | None = None
        # The most recent quantized model (static or retrain), kept so callers
        # can inspect its graph (threshold deviations, exports, ...).
        self.last_quantized_model = None

    # ------------------------------------------------------------------ #
    # FP32 pre-training (stand-in for the TF-Slim model-zoo checkpoints)
    # ------------------------------------------------------------------ #
    def pretrain_fp32(self) -> tuple[GraphIR, TrainingResult]:
        """Train the FP32 network from scratch; this plays the role of the
        pre-trained model-zoo checkpoint the paper starts from."""
        graph = build_model(self.config.model, num_classes=self.config.num_classes,
                            seed=self.config.seed, **self.config.model_kwargs)
        hparams = PaperHyperparameters(
            batch_size=self.config.batch_size, weight_lr=3e-3,
            max_epochs=self.config.pretrain_epochs, freeze_thresholds=False,
            bn_freeze_epochs=self.config.pretrain_epochs,
        )
        trainer = Trainer(graph, self.train_loader, self.val_loader, hparams=hparams)
        result = trainer.train(self.config.pretrain_epochs)
        self._pretrained = graph
        return graph, result

    def pretrained_graph(self) -> GraphIR:
        if self._pretrained is None:
            self.pretrain_fp32()
        return self._pretrained

    def _optimized_copy(self) -> GraphIR:
        """Clone the pre-trained graph and run the Graffitist optimizations."""
        graph = clone_graph(self.pretrained_graph())
        graph.eval()
        hints = avgpool_channel_hints(graph)
        transforms.run_default_optimizations(graph, channel_hints=hints)
        return graph

    # ------------------------------------------------------------------ #
    # Trials
    # ------------------------------------------------------------------ #
    def evaluate_fp32(self) -> TrialResult:
        graph = self.pretrained_graph()
        result = self.evaluator.evaluate(graph)
        return TrialResult(self.config.model, "fp32", "FP32", "32/32",
                           result.top1, result.top5)

    def run_static(self, precision: LayerPrecision = INT8_PRECISION) -> TrialResult:
        graph = self._optimized_copy()
        quantized = quantize_static(graph, self.calibration_batches,
                                    precision=precision, method=self.config.quant_method,
                                    copy=False)
        self.last_quantized_model = quantized
        result = self.evaluator.evaluate(quantized.graph)
        label = "INT8" if precision.weight_bits >= 8 else "INT4"
        return TrialResult(self.config.model, "static", label,
                           f"{precision.weight_bits}/{precision.activation_bits}",
                           result.top1, result.top5)

    def run_retrain_fp32(self) -> TrialResult:
        """Weight-only fine-tuning of the FP32 graph (the fair baseline)."""
        graph = clone_graph(self.pretrained_graph())
        trainer = Trainer(graph, self.train_loader, self.val_loader,
                          hparams=self.config.make_hparams())
        result = trainer.train(self.config.retrain_epochs)
        return TrialResult(self.config.model, "retrain wt", "FP32", "32/32",
                           result.best_top1, result.best_top5, result.best_epoch)

    def run_retrain(self, mode: str, precision: LayerPrecision = INT8_PRECISION,
                    track_thresholds: bool = False) -> tuple[TrialResult, TrainingResult]:
        """Quantized retraining in ``wt`` or ``wt,th`` mode."""
        graph = self._optimized_copy()
        quantized = prepare_retrain(graph, self.calibration_batches, mode=mode,
                                    precision=precision, method=self.config.quant_method,
                                    copy=False)
        self.last_quantized_model = quantized
        trainer = Trainer(quantized.graph, self.train_loader, self.val_loader,
                          hparams=self.config.make_hparams(),
                          track_thresholds=track_thresholds)
        result = trainer.train(self.config.retrain_epochs)
        label = "INT8" if precision.weight_bits >= 8 else "INT4"
        trial = TrialResult(self.config.model, f"retrain {mode}", label,
                            f"{precision.weight_bits}/{precision.activation_bits}",
                            result.best_top1, result.best_top5, result.best_epoch)
        return trial, result

    # ------------------------------------------------------------------ #
    def run_table3_trials(self, include_int4: bool = True) -> list[TrialResult]:
        """All Table 3 rows for this network, in the paper's order."""
        rows = [self.evaluate_fp32(), self.run_static(INT8_PRECISION),
                self.run_retrain_fp32()]
        wt_int8, _ = self.run_retrain("wt", INT8_PRECISION)
        rows.append(wt_int8)
        wtth_int8, _ = self.run_retrain("wt,th", INT8_PRECISION)
        rows.append(wtth_int8)
        if include_int4:
            wtth_int4, _ = self.run_retrain("wt,th", INT4_PRECISION)
            rows.append(wtth_int4)
        return rows

    @property
    def paper_name(self) -> str:
        return MODEL_REGISTRY[self.config.model].paper_name
