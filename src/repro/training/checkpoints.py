"""Best-checkpoint tracking and validation-history bookkeeping.

The paper validates every 1000 steps, keeps the best top-1 checkpoint and —
in Appendix D — compares that "best" number against the mean of five fixed
validations in the final epoch to bound the cherry-picking bias.  Both
quantities are recorded here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .evaluator import EvaluationResult

__all__ = ["ValidationRecord", "CheckpointKeeper"]


@dataclass(frozen=True)
class ValidationRecord:
    """One validation measurement during training."""

    step: int
    epoch: float
    result: EvaluationResult


@dataclass
class CheckpointKeeper:
    """Keeps the best-top-1 state dict and the full validation history."""

    history: list[ValidationRecord] = field(default_factory=list)
    best_record: ValidationRecord | None = None
    best_state: dict | None = None

    def update(self, step: int, epoch: float, result: EvaluationResult, state: dict) -> bool:
        """Record a validation; returns True when it is a new best."""
        record = ValidationRecord(step=step, epoch=epoch, result=result)
        self.history.append(record)
        if self.best_record is None or result.top1 > self.best_record.result.top1:
            self.best_record = record
            self.best_state = {key: np.array(value, copy=True) for key, value in state.items()}
            return True
        return False

    # ------------------------------------------------------------------ #
    @property
    def best_top1(self) -> float:
        return self.best_record.result.top1 if self.best_record else 0.0

    @property
    def best_top5(self) -> float:
        return self.best_record.result.top5 if self.best_record else 0.0

    @property
    def best_epoch(self) -> float:
        return self.best_record.epoch if self.best_record else 0.0

    def final_epoch_mean(self, last_fraction: float = 1.0) -> tuple[float, float]:
        """Mean (top-1, top-5) over the validations of the last epoch span.

        ``last_fraction`` selects the trailing fraction of recorded
        validations (Appendix D uses five fixed points in the final epoch).
        """
        if not self.history:
            return 0.0, 0.0
        count = max(1, int(round(len(self.history) * last_fraction)))
        tail = self.history[-count:]
        top1 = float(np.mean([record.result.top1 for record in tail]))
        top5 = float(np.mean([record.result.top5 for record in tail]))
        return top1, top5
