"""Validation-accuracy evaluation (top-1 / top-5)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor, no_grad
from ..data import DataLoader
from ..graph import GraphIR

__all__ = ["EvaluationResult", "Evaluator", "topk_accuracy"]


@dataclass(frozen=True)
class EvaluationResult:
    """Accuracy of one validation pass."""

    top1: float
    top5: float
    samples: int

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return f"top-1 {self.top1 * 100:.1f}%  top-5 {self.top5 * 100:.1f}%  ({self.samples} samples)"


def topk_accuracy(logits: np.ndarray, labels: np.ndarray, k: int) -> float:
    """Fraction of rows whose label is within the k highest logits."""
    if logits.ndim != 2:
        raise ValueError("logits must be (batch, classes)")
    k = min(k, logits.shape[1])
    topk = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    return float(np.mean([label in row for label, row in zip(labels, topk)]))


class Evaluator:
    """Runs a model over a validation loader and reports top-1/top-5."""

    def __init__(self, loader: DataLoader, max_batches: int | None = None) -> None:
        self.loader = loader
        self.max_batches = max_batches

    def evaluate(self, model: GraphIR) -> EvaluationResult:
        was_training = model.training
        model.eval()
        correct1 = correct5 = total = 0
        with no_grad():
            for batch_index, (images, labels) in enumerate(self.loader):
                if self.max_batches is not None and batch_index >= self.max_batches:
                    break
                logits = model(Tensor(images)).data
                total += len(labels)
                correct1 += topk_accuracy(logits, labels, 1) * len(labels)
                correct5 += topk_accuracy(logits, labels, 5) * len(labels)
        if was_training:
            model.train()
        if total == 0:
            return EvaluationResult(0.0, 0.0, 0)
        return EvaluationResult(top1=correct1 / total, top5=correct5 / total, samples=total)
