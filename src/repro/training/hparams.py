"""Hyperparameter recommendations (Section 5.2 and Table 4 / Appendix C).

``adam_guidelines`` reproduces Table 4: for log-threshold training with Adam
the learning rate, beta parameters and expected convergence step count are
functions of the quantizer's positive clipping level ``p = 2^(b-1) - 1``.
``PaperHyperparameters`` bundles the full Section 5.2 training recipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..optim.schedules import paper_threshold_schedule, paper_weight_schedule

__all__ = ["AdamGuidelines", "adam_guidelines", "PaperHyperparameters"]


@dataclass(frozen=True)
class AdamGuidelines:
    """Safe Adam hyperparameters for log-threshold training at bit-width ``b``."""

    bits: int
    p: int
    max_learning_rate: float
    min_beta1: float
    min_beta2: float
    expected_steps: float

    def satisfied_by(self, learning_rate: float, beta1: float, beta2: float) -> bool:
        """Whether the supplied hyperparameters respect all three bounds.

        Table 4 quotes the ``beta2`` bound rounded to the displayed precision
        (e.g. "0.999" for 8 bits, whose exact value is 1 - 0.1/127 = 0.99921),
        so the comparison uses the same granularity.
        """
        return (learning_rate <= self.max_learning_rate + 1e-12
                and beta1 >= self.min_beta1 - 1e-12
                and beta2 >= self.min_beta2 - 1e-3)


def adam_guidelines(bits: int, signed: bool = True) -> AdamGuidelines:
    """Table 4: bounds guaranteeing threshold oscillations stay inside one bin.

    * ``alpha <= 0.1 / sqrt(p)`` keeps the worst-case excursion
      ``alpha * sqrt(r_g)`` (Eq. 29, with the 10x over-design) below one
      integer bin, using ``r_g ≈ p``.
    * ``beta1 >= 1/e`` is required by the Appendix C analysis.
    * ``beta2 >= 1 - 0.1/p`` keeps the variance window long compared to the
      oscillation period ``T ≈ r_g``.
    * steps ≈ ``1/alpha + 1/(1-beta2)`` is the convergence estimate.
    """
    if bits < 2:
        raise ValueError("bit-width must be at least 2")
    p = 2 ** (bits - 1) - 1 if signed else 2 ** bits - 1
    max_lr = 0.1 / np.sqrt(p)
    min_beta2 = 1.0 - 0.1 / p
    expected_steps = 1.0 / max_lr + 1.0 / (1.0 - min_beta2)
    return AdamGuidelines(bits=bits, p=p, max_learning_rate=float(max_lr),
                          min_beta1=float(1.0 / np.e), min_beta2=float(min_beta2),
                          expected_steps=float(expected_steps))


@dataclass
class PaperHyperparameters:
    """The Section 5.2 retraining recipe, scaled by batch size.

    Attributes mirror the paper: Adam(0.9, 0.999) for both groups, threshold
    LR 1e-2, weight LR 1e-6 (scaled up here because the synthetic task and
    nano models need larger steps to move in few epochs — the *ratio* and
    the schedules are preserved), exponential staircase decay, batch-norm
    statistics frozen after one epoch, incremental threshold freezing.
    """

    batch_size: int = 24
    threshold_lr: float = 1e-2
    weight_lr: float = 1e-3
    beta1: float = 0.9
    beta2: float = 0.999
    weight_decay: float = 0.0
    max_epochs: int = 5
    bn_freeze_epochs: int = 1
    freeze_thresholds: bool = True
    validate_every_steps: int = 0   # 0 = once per epoch

    weight_schedule: object = field(default=None)
    threshold_schedule: object = field(default=None)

    def __post_init__(self) -> None:
        if self.weight_schedule is None:
            self.weight_schedule = paper_weight_schedule(self.batch_size)
        if self.threshold_schedule is None:
            self.threshold_schedule = paper_threshold_schedule(self.batch_size)

    @classmethod
    def paper_exact(cls, batch_size: int = 24) -> "PaperHyperparameters":
        """The literal Section 5.2 values (weight LR 1e-6), for documentation
        and for tests that check the recipe itself rather than training speed."""
        return cls(batch_size=batch_size, threshold_lr=1e-2, weight_lr=1e-6)
