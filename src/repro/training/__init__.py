"""Training, evaluation and experiment drivers."""

from .hparams import AdamGuidelines, adam_guidelines, PaperHyperparameters
from .evaluator import Evaluator, EvaluationResult, topk_accuracy
from .checkpoints import CheckpointKeeper, ValidationRecord
from .trainer import Trainer, TrainingResult
from .experiment import ExperimentConfig, ExperimentRunner, TrialResult

__all__ = [
    "AdamGuidelines",
    "adam_guidelines",
    "PaperHyperparameters",
    "Evaluator",
    "EvaluationResult",
    "topk_accuracy",
    "CheckpointKeeper",
    "ValidationRecord",
    "Trainer",
    "TrainingResult",
    "ExperimentConfig",
    "ExperimentRunner",
    "TrialResult",
]
