"""repro — reproduction of "Trained Quantization Thresholds for Accurate and
Efficient Fixed-Point Inference of Deep Neural Networks" (Jain et al., MLSys 2020).

Sub-packages
------------
``repro.autograd``  NumPy reverse-mode autograd substrate (replaces TensorFlow).
``repro.nn``        Neural-network layers and losses.
``repro.optim``     Optimizers (SGD, NormedSGD, Adam, RMSProp) and LR schedules.
``repro.quant``     TQT quantizer, baselines (FakeQuant, PACT, LSQ), calibration,
                    fixed-point kernels, threshold freezing.
``repro.graph``     Graffitist-style graph IR, optimization transforms and
                    static/retrain quantization modes.
``repro.engine``    Integer-only inference engine: plan lowering, batched
                    serving runner, bit-exactness parity checks.
``repro.serving``   Multi-model fleet server: dynamic batching, LRU plan cache,
                    SLO admission control, workload scenarios, serving metrics.
``repro.faults``    Deterministic fault injection (seeded crash/hang/error
                    schedules), retry/supervision policies and per-model
                    circuit breakers for the fleet.
``repro.telemetry`` Request-scoped tracing (Chrome trace-event export),
                    tape-level profiling spans, Prometheus text exposition and
                    the metrics time-series reduction.
``repro.deploy``    One compile-and-deploy API: typed compile configs, the
                    Deployment object, persistent content-addressed plan
                    artifacts (save/load with zero recompilation).
``repro.models``    Scaled-down model zoo (VGG, ResNet, Inception, MobileNet, DarkNet).
``repro.data``      Synthetic ImageNet substitute, preprocessing, loaders.
``repro.training``  Trainer, evaluator and the Table 1/3 experiment driver.
``repro.analysis``  Toy-L2 quantizer studies, transfer curves, convergence analysis,
                    threshold-deviation statistics and report formatting.
"""

from . import autograd, nn, optim, quant, graph, engine, models, serving, data, training, analysis
from . import deploy, faults, telemetry

__version__ = "1.4.0"

__all__ = [
    "autograd",
    "nn",
    "optim",
    "quant",
    "graph",
    "engine",
    "models",
    "serving",
    "deploy",
    "faults",
    "telemetry",
    "data",
    "training",
    "analysis",
    "__version__",
]
