"""Synthetic dataset, preprocessing and loaders."""

from .synthetic import SyntheticImageNet, DatasetSplit
from .preprocessing import Preprocessor, normalize, center_crop, random_flip
from .loader import DataLoader
from .calibration_set import sample_calibration_batches

__all__ = [
    "SyntheticImageNet",
    "DatasetSplit",
    "Preprocessor",
    "normalize",
    "center_crop",
    "random_flip",
    "DataLoader",
    "sample_calibration_batches",
]
