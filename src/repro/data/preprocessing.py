"""Input preprocessing.

The paper applies each network's standard center-crop / resize / normalize
preprocessing and *disables* data augmentation during TQT retraining
(Section 5.2).  The synthetic dataset is generated at the target resolution,
so preprocessing reduces to normalization, with optional augmentation kept
for the floating-point baselines.
"""

from __future__ import annotations

import numpy as np

__all__ = ["normalize", "center_crop", "random_flip", "Preprocessor"]


def normalize(images: np.ndarray, mean: float = 0.0, std: float = 1.0) -> np.ndarray:
    """Shift/scale images channel-uniformly."""
    return (np.asarray(images, dtype=np.float64) - mean) / std


def center_crop(images: np.ndarray, size: int) -> np.ndarray:
    """Center-crop NCHW images to ``size`` x ``size``."""
    _, _, h, w = images.shape
    if size > h or size > w:
        raise ValueError(f"crop size {size} larger than image {h}x{w}")
    top = (h - size) // 2
    left = (w - size) // 2
    return images[:, :, top:top + size, left:left + size]


def random_flip(images: np.ndarray, rng: np.random.Generator, probability: float = 0.5) -> np.ndarray:
    """Horizontally flip each image with the given probability (augmentation)."""
    flipped = images.copy()
    mask = rng.random(images.shape[0]) < probability
    flipped[mask] = flipped[mask, :, :, ::-1]
    return flipped


class Preprocessor:
    """Composable preprocessing pipeline.

    Parameters
    ----------
    mean / std: normalization constants.
    crop: optional center-crop size.
    augment: enable random horizontal flips (training of FP32 baselines
        only; TQT retraining disables augmentation).
    """

    def __init__(self, mean: float = 0.0, std: float = 1.0, crop: int | None = None,
                 augment: bool = False, seed: int = 0) -> None:
        self.mean = mean
        self.std = std
        self.crop = crop
        self.augment = augment
        self._rng = np.random.default_rng(seed)

    def __call__(self, images: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.asarray(images, dtype=np.float64)
        if self.crop is not None:
            out = center_crop(out, self.crop)
        if training and self.augment:
            out = random_flip(out, self._rng)
        return normalize(out, self.mean, self.std)
