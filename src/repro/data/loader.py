"""Mini-batch loader over the synthetic dataset."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .preprocessing import Preprocessor
from .synthetic import DatasetSplit, SyntheticImageNet

__all__ = ["DataLoader"]


class DataLoader:
    """Iterates mini-batches of a dataset split.

    Parameters
    ----------
    dataset: the synthetic dataset.
    split: which split to draw from (``dataset.train`` or ``dataset.val``).
    batch_size: samples per batch; the final partial batch is kept.
    shuffle: reshuffle indices every epoch (deterministic via ``seed``).
    preprocessor: optional preprocessing pipeline applied to every batch.
    """

    def __init__(self, dataset: SyntheticImageNet, split: DatasetSplit, batch_size: int = 16,
                 shuffle: bool = True, preprocessor: Preprocessor | None = None,
                 seed: int = 0) -> None:
        self.dataset = dataset
        self.split = split
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.preprocessor = preprocessor
        self._rng = np.random.default_rng(seed)
        self._epoch = 0

    def __len__(self) -> int:
        return (self.split.size + self.batch_size - 1) // self.batch_size

    @property
    def steps_per_epoch(self) -> int:
        return len(self)

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        indices = np.arange(self.split.size)
        if self.shuffle:
            self._rng.shuffle(indices)
        self._epoch += 1
        training = self.split.name == "train"
        for start in range(0, self.split.size, self.batch_size):
            batch_indices = indices[start:start + self.batch_size]
            images, labels = self.dataset.batch(batch_indices, self.split)
            if self.preprocessor is not None:
                images = self.preprocessor(images, training=training)
            yield images, labels
