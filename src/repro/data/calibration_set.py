"""Calibration-set sampling (Section 5.1).

The paper prepares calibration sets of 50 unlabeled images randomly sampled
from the validation split, with the standard preprocessing applied.  The
same recipe is used here, scaled by the synthetic dataset size.
"""

from __future__ import annotations

import numpy as np

from .preprocessing import Preprocessor
from .synthetic import SyntheticImageNet

__all__ = ["sample_calibration_batches"]


def sample_calibration_batches(dataset: SyntheticImageNet, num_samples: int = 50,
                               batch_size: int = 10,
                               preprocessor: Preprocessor | None = None,
                               seed: int = 0) -> list[np.ndarray]:
    """Return unlabeled calibration batches drawn from the validation split."""
    rng = np.random.default_rng(seed)
    num_samples = min(num_samples, dataset.val.size)
    indices = rng.choice(dataset.val.size, size=num_samples, replace=False)
    batches: list[np.ndarray] = []
    for start in range(0, num_samples, batch_size):
        batch_indices = indices[start:start + batch_size]
        images, _ = dataset.val_batch(batch_indices)
        if preprocessor is not None:
            images = preprocessor(images, training=False)
        batches.append(images)
    return batches
