"""Synthetic ImageNet substitute.

The paper evaluates on ImageNet (ILSVRC-2012), which is not available in
this environment.  ``SyntheticImageNet`` generates a deterministic image
classification task with the properties the paper's analysis depends on:

* class-dependent spatial structure that small CNNs can learn in a handful
  of epochs (so ≤5-epoch retraining experiments make sense);
* heavy-tailed pixel / activation statistics (per-sample illumination drawn
  from a log-normal), so calibration methods that clip (KL-J, 3SD,
  percentile) behave differently from MAX — the range/precision trade-off is
  observable;
* a validation split disjoint from the training split, generated
  deterministically from the sample index so experiments are reproducible
  without storing any data on disk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SyntheticImageNet", "DatasetSplit"]


@dataclass(frozen=True)
class DatasetSplit:
    """A named slice of the synthetic dataset."""

    name: str
    offset: int
    size: int


class SyntheticImageNet:
    """Deterministic synthetic classification dataset.

    Parameters
    ----------
    num_classes: number of classes.
    image_size: spatial size of the square images.
    channels: image channels.
    train_size / val_size: number of samples in each split.
    noise_level: additive Gaussian noise standard deviation.
    illumination_spread: sigma of the log-normal per-sample scale; larger
        values produce longer-tailed input distributions.
    seed: master seed; every sample is generated from ``seed + index`` so the
        dataset never has to be materialized.
    """

    def __init__(self, num_classes: int = 10, image_size: int = 16, channels: int = 3,
                 train_size: int = 512, val_size: int = 128, noise_level: float = 0.35,
                 illumination_spread: float = 0.35, seed: int = 0) -> None:
        self.num_classes = num_classes
        self.image_size = image_size
        self.channels = channels
        self.noise_level = noise_level
        self.illumination_spread = illumination_spread
        self.seed = seed
        self.train = DatasetSplit("train", 0, train_size)
        self.val = DatasetSplit("val", train_size, val_size)
        self._prototypes = self._build_prototypes()

    # ------------------------------------------------------------------ #
    def _build_prototypes(self) -> np.ndarray:
        """Smooth class templates: random low-frequency patterns per class."""
        rng = np.random.default_rng(self.seed)
        grid = np.linspace(-1.0, 1.0, self.image_size)
        yy, xx = np.meshgrid(grid, grid, indexing="ij")
        prototypes = np.zeros((self.num_classes, self.channels, self.image_size, self.image_size))
        for cls in range(self.num_classes):
            for ch in range(self.channels):
                fx, fy = rng.uniform(0.5, 2.5, size=2)
                phase_x, phase_y = rng.uniform(0, 2 * np.pi, size=2)
                amplitude = rng.uniform(0.6, 1.4)
                blob_x, blob_y = rng.uniform(-0.6, 0.6, size=2)
                blob_width = rng.uniform(0.25, 0.6)
                wave = np.sin(np.pi * fx * xx + phase_x) * np.cos(np.pi * fy * yy + phase_y)
                blob = np.exp(-((xx - blob_x) ** 2 + (yy - blob_y) ** 2) / (2 * blob_width ** 2))
                prototypes[cls, ch] = amplitude * (0.6 * wave + 0.8 * blob)
        return prototypes

    # ------------------------------------------------------------------ #
    def sample(self, index: int, split: DatasetSplit) -> tuple[np.ndarray, int]:
        """Generate sample ``index`` of ``split`` deterministically."""
        if index < 0 or index >= split.size:
            raise IndexError(f"index {index} out of range for split {split.name!r}")
        global_index = split.offset + index
        rng = np.random.default_rng(self.seed * 1_000_003 + global_index + 1)
        label = int(rng.integers(self.num_classes))
        illumination = float(np.exp(rng.normal(0.0, self.illumination_spread)))
        noise = rng.normal(0.0, self.noise_level,
                           size=(self.channels, self.image_size, self.image_size))
        image = illumination * self._prototypes[label] + noise
        return image.astype(np.float64), label

    def batch(self, indices: np.ndarray, split: DatasetSplit) -> tuple[np.ndarray, np.ndarray]:
        """Generate a batch of samples (NCHW images, integer labels)."""
        images = np.zeros((len(indices), self.channels, self.image_size, self.image_size))
        labels = np.zeros(len(indices), dtype=np.int64)
        for row, index in enumerate(indices):
            images[row], labels[row] = self.sample(int(index), split)
        return images, labels

    # Convenience accessors ------------------------------------------------ #
    def train_batch(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self.batch(indices, self.train)

    def val_batch(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self.batch(indices, self.val)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"SyntheticImageNet(classes={self.num_classes}, size={self.image_size}, "
                f"train={self.train.size}, val={self.val.size})")
