"""Interval time-series reduction of serving events.

The original ``MetricsCollector`` timeline was a stride-downsampled list of
raw queue-depth samples — enough to eyeball backlog, blind to everything
else.  :func:`build_timeseries` replaces it with a periodic snapshotter:
the run is cut into fixed intervals and each bucket reports arrivals,
completions, sheds, goodput, shed rate, queue depth (a forward-filled step
function over the depth samples) and worker utilization.  Queueing
collapse — e.g. an open-loop sweep offered beyond capacity — shows up as
monotone queue-depth growth with flat goodput, per interval, instead of a
single end-of-run average.

The reduction is clock-agnostic: it buckets whatever event timestamps the
collector recorded (virtual seconds or wall-clock offsets from serve
start).
"""

from __future__ import annotations

import math

__all__ = ["build_timeseries", "DEFAULT_BUCKETS", "MAX_BUCKETS"]

#: bucket count when no explicit interval is configured
DEFAULT_BUCKETS = 60
#: hard cap on buckets regardless of the configured interval
MAX_BUCKETS = 240


def build_timeseries(*, makespan_s: float, workers: int = 1,
                     arrivals=(), completions=(), sheds=(), batches=(),
                     depth_samples=(), interval_s: float | None = None) -> dict:
    """Reduce timestamped serve events into a fixed-interval time-series.

    ``arrivals``/``completions``/``sheds`` are event-time lists;
    ``batches`` is ``(finish_t, compute_s)`` pairs (compute is credited to
    the finishing bucket); ``depth_samples`` is ``(t, depth)`` pairs in
    record order.  ``interval_s=None`` picks ``makespan / DEFAULT_BUCKETS``;
    an explicit interval is honoured unless it would exceed
    ``MAX_BUCKETS`` buckets, in which case the interval is widened to fit
    (the cap keeps reports bounded for arbitrarily long runs).

    A zero-makespan run (or one with no timestamped events) degenerates to
    a single bucket with zero rates — finite output for every input.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    event_max = 0.0
    for times in (arrivals, completions, sheds):
        for t in times:
            event_max = max(event_max, t)
    for t, _ in batches:
        event_max = max(event_max, t)
    for t, _ in depth_samples:
        event_max = max(event_max, t)
    horizon = max(float(makespan_s), event_max)

    if horizon <= 0.0:
        depth = depth_samples[-1][1] if depth_samples else 0
        return {
            "interval_s": 0.0,
            "t_s": [0.0],
            "arrivals": [len(list(arrivals))],
            "completed": [len(list(completions))],
            "shed": [len(list(sheds))],
            "goodput_rps": [0.0],
            "shed_rate": [0.0],
            "queue_depth": [int(depth)],
            "utilization": [0.0],
            "workers": int(workers),
        }

    if interval_s is None:
        buckets = DEFAULT_BUCKETS
        interval_s = horizon / buckets
    else:
        buckets = max(1, math.ceil(horizon / interval_s - 1e-9))
        if buckets > MAX_BUCKETS:
            buckets = MAX_BUCKETS
            interval_s = horizon / buckets

    def bucket(t: float) -> int:
        return min(buckets - 1, max(0, int(t / interval_s)))

    arrived = [0] * buckets
    completed = [0] * buckets
    shed = [0] * buckets
    busy_s = [0.0] * buckets
    for t in arrivals:
        arrived[bucket(t)] += 1
    for t in completions:
        completed[bucket(t)] += 1
    for t in sheds:
        shed[bucket(t)] += 1
    for t, compute_s in batches:
        busy_s[bucket(t)] += compute_s

    # Queue depth is a step function: the last sample at or before each
    # bucket's end, forward-filled (0 before the first sample).
    depth_series = [0] * buckets
    ordered = sorted(depth_samples, key=lambda pair: pair[0])
    cursor, current = 0, 0
    for index in range(buckets):
        edge = (index + 1) * interval_s
        while cursor < len(ordered) and ordered[cursor][0] <= edge:
            current = ordered[cursor][1]
            cursor += 1
        depth_series[index] = int(current)

    return {
        "interval_s": interval_s,
        "t_s": [round((index + 1) * interval_s, 6) for index in range(buckets)],
        "arrivals": arrived,
        "completed": completed,
        "shed": shed,
        "goodput_rps": [count / interval_s for count in completed],
        "shed_rate": [s / a if a else 0.0 for s, a in zip(shed, arrived)],
        "queue_depth": depth_series,
        "utilization": [min(1.0, b / (workers * interval_s)) for b in busy_s],
        "workers": int(workers),
    }
