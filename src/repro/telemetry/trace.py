"""Request-scoped tracing: spans, samplers and the tracer event sink.

One serve run produces one :class:`Trace` — a bounded list of
:class:`Span` records on a single clock (the virtual discrete-event clock
or wall-clock offsets from serve start), plus named counters.  The design
constraints, in order:

* **Zero cost when off.**  Telemetry defaults to disabled
  (``TelemetryConfig(sample_rate=0.0)``); the server then routes every
  span call through :data:`NULL_TRACER`, whose methods are no-ops and
  whose ``enabled`` flag lets hot paths skip argument construction
  entirely (``if tracer.enabled: ...``).  The overhead budget is gated by
  ``benchmarks/test_telemetry_overhead.py``.
* **Deterministic head-based sampling.**  Whether a request is traced is
  a pure function of ``(request_id, seed)`` — a splitmix64-style hash
  mapped to [0, 1) and compared against ``sample_rate`` — so the parent
  process, its dispatch threads and remote worker processes all agree on
  the sampled subset without any coordination or shared state.
* **Cross-process spans.**  Worker processes buffer spans locally as
  plain tuples (:meth:`Span.to_tuple`) and ship them back on the result
  queue; the parent re-times them into its own clock via
  :meth:`Tracer.adopt`, clamping each span into the observed
  send/receive window so nesting and monotonicity survive clock offset
  between processes.

The Chrome ``trace_event`` / Prometheus renderings live in
:mod:`repro.telemetry.export`; the interval time-series reduction in
:mod:`repro.telemetry.snapshot`.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

__all__ = ["TelemetryConfig", "Span", "Tracer", "NullTracer", "NULL_TRACER",
           "Trace", "sample_hash", "tape_span_args", "attach_tape_sink"]

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def sample_hash(request_id: int, seed: int = 0) -> float:
    """Deterministic hash of a request id into [0, 1) (splitmix64 finalizer).

    Pure function of ``(request_id, seed)``: every process in the fleet
    computes the same value, so head-based sampling needs no coordination.
    """
    x = (int(request_id) + _GOLDEN * (int(seed) + 1)) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x / 2.0 ** 64


@dataclass(frozen=True)
class TelemetryConfig:
    """Tracing knobs for one :class:`~repro.serving.FleetServer`.

    ``sample_rate=0.0`` (the default) disables tracing entirely — the
    server uses :data:`NULL_TRACER` and pays only one attribute check per
    instrumentation point.  ``sample_rate=1.0`` traces every request.
    ``tape_spans`` additionally emits one span per tape instruction on
    batches that contain a sampled request (kernel name, chosen variant,
    output shape, arena slot) — the highest-resolution, highest-overhead
    level.  ``snapshot_interval_s`` sets the bucket width of the metrics
    time-series (``None`` -> auto, see
    :func:`repro.telemetry.snapshot.build_timeseries`).  ``max_spans``
    bounds trace memory; excess spans are counted as dropped, never
    stored.  ``seed`` perturbs the sampling hash so disjoint sampled
    subsets can be drawn from the same request ids.
    """

    sample_rate: float = 0.0
    tape_spans: bool = False
    snapshot_interval_s: float | None = None
    max_spans: int = 100_000
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {self.sample_rate}")
        if self.max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {self.max_spans}")
        if self.snapshot_interval_s is not None and self.snapshot_interval_s <= 0:
            raise ValueError(f"snapshot_interval_s must be > 0, "
                             f"got {self.snapshot_interval_s}")

    @property
    def enabled(self) -> bool:
        return self.sample_rate > 0.0

    def to_dict(self) -> dict:
        return asdict(self)


class Span:
    """One timed interval on the trace clock (seconds from serve start)."""

    __slots__ = ("name", "cat", "start_s", "end_s", "lane", "trace_id", "args")

    def __init__(self, name: str, cat: str, start_s: float, end_s: float,
                 lane: str = "server", trace_id: int | None = None,
                 args: dict | None = None) -> None:
        self.name = name
        self.cat = cat
        self.start_s = start_s
        self.end_s = end_s
        self.lane = lane
        self.trace_id = trace_id
        self.args = args

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def to_tuple(self) -> tuple:
        """Queue-friendly wire form (see :meth:`Tracer.adopt`)."""
        return (self.name, self.cat, self.start_s, self.end_s, self.lane,
                self.trace_id, self.args)

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, cat={self.cat!r}, "
                f"[{self.start_s:.6f}, {self.end_s:.6f}], lane={self.lane!r})")


@dataclass
class Trace:
    """The immutable result of one traced serve run."""

    clock: str                       # "virtual" | "wall"
    spans: list[Span] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)
    dropped: int = 0

    def by_category(self, cat: str) -> list[Span]:
        return [span for span in self.spans if span.cat == cat]

    def by_trace_id(self, trace_id: int) -> list[Span]:
        return [span for span in self.spans if span.trace_id == trace_id]

    def to_chrome(self) -> dict:
        """Chrome ``trace_event`` JSON object (Perfetto/about:tracing)."""
        from .export import chrome_trace
        return chrome_trace(self)

    def save(self, path) -> Path:
        """Write the Chrome trace JSON to ``path``; returns the path."""
        from .export import write_chrome_trace
        return write_chrome_trace(path, self)


class Tracer:
    """Thread-safe span/counter sink for one serve run.

    The server creates one tracer per :meth:`FleetServer.serve` call when
    telemetry is enabled and funnels every span through it; worker
    processes never see the tracer — they buffer raw span tuples and the
    parent :meth:`adopt`\\ s them.  ``max_spans`` bounds memory: the
    overflow is counted (``dropped``), not stored.
    """

    enabled = True

    def __init__(self, config: TelemetryConfig, clock: str = "virtual") -> None:
        if clock not in ("virtual", "wall"):
            raise ValueError(f"clock must be 'virtual' or 'wall', got {clock!r}")
        self.config = config
        self.clock = clock
        self.spans: list[Span] = []
        self.counters: dict[str, int] = {}
        self.dropped = 0
        self._lock = threading.Lock()

    def sampled(self, request_id: int) -> bool:
        """Head-based sampling decision (deterministic across processes)."""
        rate = self.config.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return sample_hash(request_id, self.config.seed) < rate

    def record(self, name: str, cat: str, start_s: float, end_s: float, *,
               lane: str = "server", trace_id: int | None = None,
               args: dict | None = None) -> None:
        if end_s < start_s:          # clock-skew guard: spans never run backwards
            end_s = start_s
        with self._lock:
            if len(self.spans) >= self.config.max_spans:
                self.dropped += 1
                return
            self.spans.append(Span(name, cat, start_s, end_s, lane=lane,
                                   trace_id=trace_id, args=args))

    def adopt(self, raw_spans, clamp: tuple[float, float] | None = None) -> None:
        """Ingest spans shipped from a worker process (tuples from
        :meth:`Span.to_tuple`).

        ``clamp=(t_send, t_recv)`` confines each span to the parent-observed
        dispatch window: the worker aligned its stamps with a clock offset
        derived from the task message, but offset estimation error could
        otherwise push a child span outside its parent dispatch span and
        break nesting/monotonicity guarantees.
        """
        for name, cat, start_s, end_s, lane, trace_id, args in raw_spans:
            if clamp is not None:
                lo, hi = clamp
                start_s = min(max(start_s, lo), hi)
                end_s = min(max(end_s, lo), hi)
            self.record(name, cat, start_s, end_s, lane=lane,
                        trace_id=trace_id, args=args)

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def finish(self, metadata: dict | None = None) -> Trace:
        with self._lock:
            return Trace(clock=self.clock, spans=list(self.spans),
                         counters=dict(self.counters),
                         metadata=dict(metadata or {}), dropped=self.dropped)


class NullTracer:
    """The disabled tracer: every call is a no-op, ``enabled`` is False.

    Hot paths guard span construction with ``if tracer.enabled``, so the
    disabled cost is one attribute load per instrumentation point.
    """

    enabled = False
    clock = "off"

    def sampled(self, request_id: int) -> bool:
        return False

    def record(self, *args, **kwargs) -> None:
        pass

    def adopt(self, raw_spans, clamp=None) -> None:
        pass

    def count(self, name: str, n: int = 1) -> None:
        pass

    def finish(self, metadata: dict | None = None) -> None:
        return None


#: Shared no-op tracer (stateless, safe to reuse across serves and threads).
NULL_TRACER = NullTracer()


# ---------------------------------------------------------------------- #
# Tape-program instrumentation (engine hook)
# ---------------------------------------------------------------------- #
def tape_span_args(tape) -> dict[int, dict]:
    """Static per-instruction span metadata for one compiled tape.

    Keyed by ``id(instr)`` over the tape's *current* flat instruction list
    (rebuild the map after ``apply_choices``/``rebuild``).  Each entry
    carries the lowered op, the instruction kind (kernel), the chosen
    autotune variant for tunable groups, and the producing step's output
    shape and arena buffer slot when the engine exposes them.
    """
    engine = getattr(tape, "_engine", None)
    step_meta: dict[str, dict] = {}
    plan = getattr(engine, "plan", None)
    bounds = getattr(engine, "steps", None)
    if plan is not None and bounds is not None:
        for step, bound in zip(plan.steps, bounds):
            meta: dict = {}
            shape = getattr(bound, "out_shape", None)
            if shape is not None:
                meta["shape"] = list(shape)
            slot = getattr(bound, "output_slot", None)
            if slot is not None:
                meta["slot"] = int(slot)
            step_meta[step.name] = meta
    info: dict[int, dict] = {}
    for item in tape.items:
        if hasattr(item, "instructions"):      # a tunable macro-kernel group
            flat = item.instructions()
            variant = item.chosen
        else:
            flat, variant = [item], None
        for instr in flat:
            args = {"op": str(instr.op), "kind": instr.kind}
            if variant is not None:
                args["variant"] = variant
            args.update(step_meta.get(instr.name, {}))
            info[id(instr)] = args
    return info


def attach_tape_sink(tape, emit) -> Callable[[], None]:
    """Install a per-instruction trace sink on a ``TapeProgram``.

    ``emit(name, args, start_s, end_s)`` is called once per executed
    instruction with **raw** ``time.perf_counter()`` stamps — the caller
    converts them to its trace clock.  Returns a detach callable; the
    sink must be detached before another (untraced) execution is timed,
    as the traced loop adds two clock reads per instruction.
    """
    args_by_id = tape_span_args(tape)

    def sink(instr, start_s: float, end_s: float) -> None:
        emit(instr.name, args_by_id.get(id(instr), {}), start_s, end_s)

    tape.trace_sink = sink

    def detach() -> None:
        tape.trace_sink = None

    return detach
