"""Trace and metrics exporters: Chrome ``trace_event`` JSON + Prometheus text.

Both formats are plain-stdlib renderings of in-memory objects:

* :func:`chrome_trace` turns a :class:`~repro.telemetry.trace.Trace` into
  the Chrome Trace Event Format (JSON object form) — load the written file
  in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.  Every
  span becomes one complete ("X") event with microsecond timestamps;
  lanes (per-request lanes, dispatch workers, worker processes, tape
  lanes) map to named threads of one synthetic process.
* :func:`prometheus_text` renders a :meth:`MetricsCollector.report` dict
  as Prometheus text exposition (``# HELP`` / ``# TYPE`` + samples), the
  format every Prometheus-compatible scraper ingests.  Engine pipeline
  work counters (:data:`repro.engine.PIPELINE_COUNTERS`) are bridged in
  as ``repro_pipeline_*_total``.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["chrome_trace", "write_chrome_trace", "prometheus_text"]

_PROCESS_NAME = "repro-fleet"


def chrome_trace(trace) -> dict:
    """Render a :class:`~repro.telemetry.trace.Trace` as Chrome trace JSON.

    Returns the JSON object form (``{"traceEvents": [...], ...}``), which
    both Perfetto and ``chrome://tracing`` load.  Span times (seconds on
    the trace clock) become integer-free microsecond ``ts``/``dur``
    floats; lanes become stable thread ids in first-seen order with
    ``thread_name`` metadata so the viewer labels them.
    """
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
        "args": {"name": _PROCESS_NAME},
    }]
    lane_tids: dict[str, int] = {}
    span_events: list[dict] = []
    for span in trace.spans:
        tid = lane_tids.get(span.lane)
        if tid is None:
            tid = len(lane_tids) + 1
            lane_tids[span.lane] = tid
            events.append({"name": "thread_name", "ph": "M", "pid": 1,
                           "tid": tid, "args": {"name": span.lane}})
        args = dict(span.args) if span.args else {}
        if span.trace_id is not None:
            args.setdefault("request_id", span.trace_id)
        span_events.append({
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": span.start_s * 1e6,
            "dur": max(0.0, span.duration_s) * 1e6,
            "pid": 1,
            "tid": tid,
            "args": args,
        })
    # Stable viewer ordering (and a monotonicity aid for consumers): sort
    # the complete events by start time; metadata events stay in front.
    span_events.sort(key=lambda e: (e["ts"], e["tid"]))
    events.extend(span_events)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": trace.clock,
            "dropped_spans": trace.dropped,
            "counters": dict(trace.counters),
            **dict(trace.metadata),
        },
    }


def write_chrome_trace(path, trace) -> Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(trace)) + "\n")
    return path


# ---------------------------------------------------------------------- #
# Prometheus text exposition
# ---------------------------------------------------------------------- #
def _escape(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


class _Exposition:
    """Accumulates families in exposition order with HELP/TYPE headers."""

    def __init__(self) -> None:
        self.lines: list[str] = []

    def family(self, name: str, kind: str, help_text: str,
               samples: list[tuple[dict, float | int]]) -> None:
        if not samples:
            return
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            label_s = ""
            if labels:
                inner = ",".join(f'{key}="{_escape(val)}"'
                                 for key, val in labels.items())
                label_s = "{" + inner + "}"
            if isinstance(value, float):
                rendered = repr(float(value))
            else:
                rendered = str(int(value))
            self.lines.append(f"{name}{label_s} {rendered}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def prometheus_text(report: dict, namespace: str = "repro",
                    pipeline_counters=None) -> str:
    """Render a serving metrics report as Prometheus text exposition.

    ``report`` is the dict from :meth:`MetricsCollector.report` (also at
    ``FleetReport.metrics``).  Cumulative quantities render as counters,
    point-in-time ones as gauges; latency percentiles become a
    ``*_latency_ms`` gauge with a ``quantile`` label.  ``pipeline_counters``
    defaults to the process-global :data:`repro.engine.PIPELINE_COUNTERS`
    (pass ``None`` explicitly gets the global; pass a
    :class:`~repro.engine.counters.PipelineCounters` to override, e.g. a
    snapshot delta).
    """
    expo = _Exposition()
    per_model = report.get("per_model", {})
    fleet = report.get("fleet", {})

    expo.family(f"{namespace}_requests_total", "counter",
                "Requests offered to the fleet, by model.",
                [({"model": m}, s["arrivals"]) for m, s in per_model.items()])
    expo.family(f"{namespace}_completed_total", "counter",
                "Requests completed, by model.",
                [({"model": m}, s["completed"]) for m, s in per_model.items()])
    expo.family(f"{namespace}_shed_total", "counter",
                "Requests shed at admission, by model and reason.",
                [({"model": m, "reason": reason}, count)
                 for m, s in per_model.items()
                 for reason, count in sorted(s.get("shed", {}).items())])
    expo.family(f"{namespace}_batches_total", "counter",
                "Engine batches launched, by model.",
                [({"model": m}, s["batches"]) for m, s in per_model.items()])
    expo.family(f"{namespace}_batch_padded_slots_total", "counter",
                "Padded (wasted) batch slots, by model.",
                [({"model": m}, s["padded_slots"]) for m, s in per_model.items()])
    expo.family(f"{namespace}_megabatch_saved_executions_total", "counter",
                "Engine passes saved by megabatch coalescing, by model.",
                [({"model": m}, s.get("megabatch_saved_executions", 0))
                 for m, s in per_model.items()])
    expo.family(f"{namespace}_model_compute_seconds_total", "counter",
                "Engine busy seconds, by model.",
                [({"model": m}, float(s["compute_s"]))
                 for m, s in per_model.items()])
    queue_samples = [({"model": m}, s["queue"]["max_depth"])
                     for m, s in per_model.items() if "queue" in s]
    expo.family(f"{namespace}_queue_max_depth", "gauge",
                "Peak per-model queue depth over the run.", queue_samples)

    expo.family(f"{namespace}_failed_total", "counter",
                "Requests that terminated as failed, by model and fault kind.",
                [({"model": m, "reason": reason}, count)
                 for m, s in per_model.items()
                 for reason, count in sorted(s.get("failed", {}).items())])
    expo.family(f"{namespace}_retries_total", "counter",
                "Retry attempts spent by the resilience policy, by model.",
                [({"model": m}, s.get("retries", 0))
                 for m, s in per_model.items() if s.get("retries")])

    faults = report.get("faults")
    if faults:
        observed = faults.get("observed") or {}
        expo.family(f"{namespace}_faults_observed_total", "counter",
                    "Fault events observed by the supervisor, by kind.",
                    [({"kind": kind}, count)
                     for kind, count in sorted(observed.items())])
        supervisor = faults.get("supervisor") or {}
        for key, help_text in (
                ("crashes", "Worker crashes detected by the supervisor."),
                ("timeouts", "Per-task recv deadlines tripped."),
                ("respawns", "Worker processes respawned.")):
            if supervisor.get(key):
                expo.family(f"{namespace}_supervisor_{key}_total", "counter",
                            help_text, [({}, int(supervisor[key]))])
        breaker = faults.get("breaker") or {}
        models = breaker.get("models") or {}
        expo.family(f"{namespace}_breaker_opens_total", "counter",
                    "Circuit-breaker open transitions, by model.",
                    [({"model": m}, b.get("opens", 0))
                     for m, b in sorted(models.items()) if b.get("opens")])
        _STATES = {"closed": 0, "open": 1, "half_open": 2}
        expo.family(f"{namespace}_breaker_state", "gauge",
                    "Circuit-breaker state by model "
                    "(0=closed, 1=open, 2=half_open).",
                    [({"model": m}, _STATES.get(b.get("state"), 0))
                     for m, b in sorted(models.items())])
        degraded = faults.get("degraded_models") or []
        expo.family(f"{namespace}_degraded_models", "gauge",
                    "Models degraded to the in-process fallback path.",
                    [({}, len(degraded))])

    admission = report.get("admission")
    if admission:
        expo.family(f"{namespace}_admission_decisions_total", "counter",
                    "Admission controller decisions, by outcome.",
                    [({"outcome": key}, value)
                     for key, value in sorted(admission.items())])

    gauges = [
        ("goodput_rps", "Completed requests per second over the makespan."),
        ("offered_rps", "Offered request rate over the arrival span."),
        ("shed_rate", "Fraction of arrivals shed."),
        ("utilization", "Busy time over workers x makespan."),
    ]
    for key, help_text in gauges:
        if key in fleet:
            expo.family(f"{namespace}_fleet_{key}", "gauge", help_text,
                        [({}, float(fleet[key]))])
    attainment = fleet.get("slo_attainment")
    if attainment is not None:
        expo.family(f"{namespace}_fleet_slo_attainment", "gauge",
                    "Fraction of deadline-carrying completions inside SLO.",
                    [({}, float(attainment))])
    latency = fleet.get("latency_ms", {})
    expo.family(f"{namespace}_fleet_latency_ms", "gauge",
                "Fleet-wide completion latency percentiles (milliseconds).",
                [({"quantile": q}, float(latency[q]))
                 for q in ("p50", "p90", "p95", "p99", "max") if q in latency])
    if "makespan_s" in report:
        expo.family(f"{namespace}_makespan_seconds", "gauge",
                    "Serve-run makespan on the report clock.",
                    [({}, float(report["makespan_s"]))])

    if pipeline_counters is None:
        from ..engine.counters import PIPELINE_COUNTERS
        pipeline_counters = PIPELINE_COUNTERS
    for key, value in pipeline_counters.snapshot().items():
        expo.family(f"{namespace}_pipeline_{key}_total", "counter",
                    f"Compile-pipeline stage executions: {key}.",
                    [({}, int(value))])
    return expo.text()
