"""Zero-dependency tracing + metrics export for the serving fleet.

Three pieces:

* :mod:`repro.telemetry.trace` — request-scoped spans with deterministic
  head-based sampling (:class:`TelemetryConfig`), a thread-safe
  :class:`Tracer` (and the zero-cost :data:`NULL_TRACER` used when
  telemetry is off), and the opt-in per-instruction tape hook
  (:func:`attach_tape_sink`).  Worker processes buffer spans locally and
  ship them back clock-offset-aligned (:meth:`Tracer.adopt`).
* :mod:`repro.telemetry.export` — Chrome ``trace_event`` JSON
  (Perfetto-loadable) and Prometheus text exposition of fleet counters,
  gauges and the engine's pipeline work counters.
* :mod:`repro.telemetry.snapshot` — the periodic time-series reduction
  (arrivals/goodput/shed/queue depth/utilization per interval) embedded
  in every metrics report.

Enable tracing per server or per serve call::

    from repro.telemetry import TelemetryConfig
    report = server.serve(requests, telemetry=TelemetryConfig(sample_rate=1.0))
    report.save_trace("trace.json")     # open in https://ui.perfetto.dev
    print(report.prometheus())          # text exposition of the metrics
"""

from .export import chrome_trace, prometheus_text, write_chrome_trace
from .snapshot import DEFAULT_BUCKETS, MAX_BUCKETS, build_timeseries
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    TelemetryConfig,
    Trace,
    Tracer,
    attach_tape_sink,
    sample_hash,
    tape_span_args,
)

__all__ = [
    "TelemetryConfig",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Trace",
    "sample_hash",
    "tape_span_args",
    "attach_tape_sink",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "build_timeseries",
    "DEFAULT_BUCKETS",
    "MAX_BUCKETS",
]
