"""Quantization-insertion pass: rewrite an optimized FP32 graph into a
quantized training/inference graph (Section 4.2–4.3).

The pass walks the graph in topological order and applies the layer-topology
rules of Section 4.3:

* compute layers (conv / depthwise conv / matmul) get weight, bias and
  output quantizers; when the sole consumer is a ReLU/ReLU6 the activation
  is fused so the 8-bit output stage happens *after* it and uses an unsigned
  range;
* eltwise-add inputs share a merged scale and the result is re-quantized;
* concat inputs share a merged scale and the op is lossless;
* leaky-relu keeps 16-bit internal precision and suppresses the preceding
  layer's 8-bit stage;
* the primary input is quantized explicitly;
* first and last compute layers never drop below 8-bit weights, so the whole
  network maps onto the same fixed-point hardware (Section 6.1, footnote 8).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..nn import Conv2d, LeakyReLU, Linear, Parameter
from ..quant.qmodules import (
    ActivationQuantizer,
    QuantizedAdd,
    QuantizedConcat,
    QuantizedConv2d,
    QuantizedInput,
    QuantizedLeakyReLU,
    QuantizedLinear,
    QuantScheme,
)
from ..quant.tqt import TQTQuantizer
from .ir import GraphIR, Node, OpKind

__all__ = [
    "clone_graph",
    "quantize_graph",
    "QuantizationReport",
    "collect_activation_quantizers",
    "collect_tqt_quantizers",
    "split_parameters",
]


def clone_graph(graph: GraphIR) -> GraphIR:
    """Deep copy of a graph (modules, parameters and edges)."""
    return copy.deepcopy(graph)


@dataclass
class QuantizationReport:
    """What the quantization pass did, for logging and tests."""

    compute_layers: int = 0
    fused_activations: int = 0
    add_layers: int = 0
    concat_layers: int = 0
    leaky_relu_layers: int = 0
    first_layer: str | None = None
    last_layer: str | None = None
    weight_bits: dict[str, int] = field(default_factory=dict)


def _activation_kind(graph: GraphIR, node: Node) -> tuple[str, Node | None]:
    """Return the fused activation kind and the activation node to remove."""
    consumers = graph.consumers(node.name)
    if len(consumers) != 1:
        return "none", None
    consumer = consumers[0]
    if consumer.op == OpKind.RELU:
        return "relu", consumer
    if consumer.op == OpKind.RELU6:
        return "relu6", consumer
    return "none", None


def quantize_graph(graph: GraphIR, scheme: QuantScheme,
                   quantize_input: bool = True) -> QuantizationReport:
    """Rewrite ``graph`` in place into its quantized form.

    Returns a :class:`QuantizationReport` describing the rewrites.
    """
    report = QuantizationReport()
    order = graph.topological_order()
    compute_nodes = [n for n in order if n.op in OpKind.COMPUTE_KINDS]
    if not compute_nodes:
        raise ValueError("graph has no compute layers to quantize")
    first_name, last_name = compute_nodes[0].name, compute_nodes[-1].name
    report.first_layer, report.last_layer = first_name, last_name

    # --- compute layers ------------------------------------------------ #
    for node in compute_nodes:
        if node.name not in graph.nodes:
            continue
        weight_bits = scheme.precision.weight_bits
        if node.name in (first_name, last_name):
            weight_bits = max(weight_bits, scheme.precision.min_first_last_weight_bits)
        activation, act_node = _activation_kind(graph, node)
        module = node.module
        if isinstance(module, Conv2d):
            quantized = QuantizedConv2d(module, scheme, activation=activation,
                                        weight_bits=weight_bits, name=node.name)
            new_op = OpKind.QUANT_CONV
        elif isinstance(module, Linear):
            quantized = QuantizedLinear(module, scheme, activation=activation,
                                        weight_bits=weight_bits, name=node.name)
            new_op = OpKind.QUANT_LINEAR
        else:
            raise TypeError(f"compute node {node.name!r} holds unsupported module {type(module)}")
        graph.replace_node(node.name, Node(name=node.name, op=new_op, module=quantized,
                                           inputs=list(node.inputs), attrs=dict(node.attrs)))
        report.compute_layers += 1
        report.weight_bits[node.name] = weight_bits
        if act_node is not None:
            graph.remove_node(act_node.name, rewire_to=node.name)
            report.fused_activations += 1

    # --- eltwise add ----------------------------------------------------- #
    for node in list(graph.nodes_of_kind(OpKind.ADD)):
        activation, act_node = _activation_kind(graph, node)
        quantized = QuantizedAdd(scheme, activation=activation, name=node.name)
        graph.replace_node(node.name, Node(name=node.name, op=OpKind.QUANT_ADD,
                                           module=quantized, inputs=list(node.inputs),
                                           attrs=dict(node.attrs)))
        report.add_layers += 1
        if act_node is not None:
            graph.remove_node(act_node.name, rewire_to=node.name)
            report.fused_activations += 1

    # --- concat ----------------------------------------------------------- #
    for node in list(graph.nodes_of_kind(OpKind.CONCAT)):
        quantized = QuantizedConcat(scheme, axis=node.attrs.get("axis", 1), name=node.name)
        graph.replace_node(node.name, Node(name=node.name, op=OpKind.QUANT_CONCAT,
                                           module=quantized, inputs=list(node.inputs),
                                           attrs=dict(node.attrs)))
        report.concat_layers += 1

    # --- leaky relu -------------------------------------------------------- #
    for node in list(graph.nodes_of_kind(OpKind.LEAKY_RELU)):
        slope = node.module.negative_slope if isinstance(node.module, LeakyReLU) else 0.1
        quantized = QuantizedLeakyReLU(scheme, negative_slope=slope, name=node.name)
        graph.replace_node(node.name, Node(name=node.name, op=OpKind.QUANT_LEAKY_RELU,
                                           module=quantized, inputs=list(node.inputs),
                                           attrs=dict(node.attrs)))
        report.leaky_relu_layers += 1
        # Skip the 8-bit output stage of the producing compute layer: the
        # leaky relu quantizes its input at 16 bits itself (Section 4.3).
        for producer_name in node.inputs:
            producer = graph.nodes.get(producer_name)
            if producer is not None and producer.op in (OpKind.QUANT_CONV, OpKind.QUANT_LINEAR):
                producer.module.output_quantizer.set_mode("bypass")

    # --- primary input ------------------------------------------------------ #
    if quantize_input:
        for input_name in list(graph.input_names):
            node_name = f"{input_name}__quant"
            if node_name in graph.nodes:
                continue
            graph.insert_after(input_name, Node(name=node_name, op=OpKind.QUANTIZE,
                                                module=QuantizedInput(scheme, name=node_name)))

    graph.validate()
    return report


# ---------------------------------------------------------------------- #
# Introspection helpers used by calibration, the trainer and the freezer
# ---------------------------------------------------------------------- #
def collect_activation_quantizers(graph: GraphIR) -> dict[str, ActivationQuantizer]:
    """All :class:`ActivationQuantizer` modules in the graph, keyed by path."""
    found: dict[str, ActivationQuantizer] = {}
    for name, module in graph.named_modules():
        if isinstance(module, ActivationQuantizer):
            found[name] = module
    return found


def collect_tqt_quantizers(graph: GraphIR, trainable_only: bool = False) -> dict[str, TQTQuantizer]:
    """All TQT quantizers in the graph (weights, activations, biases)."""
    found: dict[str, TQTQuantizer] = {}
    for name, module in graph.named_modules():
        if isinstance(module, TQTQuantizer):
            if trainable_only and not module.trainable:
                continue
            found[name] = module
    return found


def split_parameters(graph: GraphIR) -> tuple[list[Parameter], list[Parameter]]:
    """Split graph parameters into ``(weights, thresholds)``.

    Threshold parameters are the learnable quantizer parameters (``log2_t``
    for TQT, ``min/max`` for FakeQuant, step size for LSQ); everything else
    (convolution weights, biases, batch-norm affine parameters) belongs to
    the weight group.  The trainer gives the two groups the different
    learning rates / schedules of Section 5.2.
    """
    threshold_ids: set[int] = set()
    threshold_params: list[Parameter] = []
    for _, module in graph.named_modules():
        param_names = ()
        if module.__class__.__name__ == "TQTQuantizer":
            param_names = ("log2_t",)
        elif module.__class__.__name__ == "FakeQuantizer":
            param_names = ("min_val", "max_val")
        elif module.__class__.__name__ == "LSQQuantizer":
            param_names = ("step_size",)
        elif module.__class__.__name__ == "PACTQuantizer":
            param_names = ("alpha",)
        for attr in param_names:
            param = getattr(module, attr)
            if id(param) not in threshold_ids:
                threshold_ids.add(id(param))
                threshold_params.append(param)
    weight_params = [p for p in graph.parameters() if id(p) not in threshold_ids]
    # De-duplicate shared weights while preserving order.
    seen: set[int] = set()
    unique_weights: list[Parameter] = []
    for param in weight_params:
        if id(param) not in seen:
            seen.add(id(param))
            unique_weights.append(param)
    return unique_weights, threshold_params
