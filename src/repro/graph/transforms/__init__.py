"""Graph optimization passes applied before quantization (Section 4.1)."""

from .bn_fold import fold_batch_norms
from .splice_identity import splice_identities
from .collapse_concat import collapse_concats
from .avgpool_to_dwconv import avgpool_to_depthwise_conv
from .merge_scales import ScaleGroup, find_scale_merge_groups

__all__ = [
    "fold_batch_norms",
    "splice_identities",
    "collapse_concats",
    "avgpool_to_depthwise_conv",
    "ScaleGroup",
    "find_scale_merge_groups",
    "run_default_optimizations",
]


def run_default_optimizations(graph, channel_hints: dict[str, int] | None = None) -> dict[str, int]:
    """Run the standard Graffitist optimization pipeline in order.

    Returns a dictionary with the number of rewrites each pass performed, so
    callers (and tests) can assert which transformations fired.
    """
    report = {
        "identities_spliced": splice_identities(graph),
        "batch_norms_folded": fold_batch_norms(graph),
        "concats_collapsed": collapse_concats(graph),
        "avgpools_rewritten": avgpool_to_depthwise_conv(graph, channel_hints or {}),
    }
    graph.validate()
    return report
