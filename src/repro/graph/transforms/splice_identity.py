"""Identity / dropout splicing transform (Section 4.1).

Removes nodes that are no-ops at inference time — explicit identities and
dropout layers — rewiring their consumers to the producer.  The paper
removes dropout before TQT retraining anyway (Section 5.2), so the spliced
graph is what both static and retrain modes operate on.
"""

from __future__ import annotations

from ..ir import GraphIR, OpKind

__all__ = ["splice_identities"]


def splice_identities(graph: GraphIR) -> int:
    """Remove identity and dropout nodes; returns how many were removed."""
    removed = 0
    for node in list(graph.nodes.values()):
        if node.op not in OpKind.PASSTHROUGH_KINDS:
            continue
        if len(node.inputs) != 1:
            continue
        graph.remove_node(node.name)
        removed += 1
    return removed
