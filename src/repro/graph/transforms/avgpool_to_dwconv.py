"""Average-pool to depthwise-convolution rewriting (Section 4.1).

Average pooling is re-expressed as a depthwise convolution whose weights are
the reciprocal ``1 / F^2`` of the kernel area, so the op can be quantized
with the standard compute-layer rules (weights become an 8-bit constant and
the accumulation happens in the 16-bit internal precision).
"""

from __future__ import annotations

from ...nn import AvgPool2d, DepthwiseConv2d
from ..ir import GraphIR, Node, OpKind

__all__ = ["avgpool_to_depthwise_conv"]


def _make_reciprocal_conv(channels: int, kernel: tuple[int, int], stride, padding) -> DepthwiseConv2d:
    conv = DepthwiseConv2d(channels, kernel, stride=stride, padding=padding, bias=False)
    conv.weight.data[...] = 1.0 / float(kernel[0] * kernel[1])
    conv.weight.requires_grad = False  # the reciprocal is a constant, not a trainable weight
    return conv


def avgpool_to_depthwise_conv(graph: GraphIR, channel_hints: dict[str, int]) -> int:
    """Replace avg-pool nodes with reciprocal depthwise convolutions.

    Parameters
    ----------
    channel_hints: mapping from avg-pool node name to its channel count
        (the IR is shape-agnostic, so the caller — usually the model builder
        or the quantization driver — supplies channel counts).

    Returns the number of nodes rewritten.  Global average pooling is left
    as-is when no spatial size hint is available (it is handled as a
    lossless mean by the quantization pass).
    """
    rewritten = 0
    for node in list(graph.nodes_of_kind(OpKind.AVGPOOL)):
        channels = channel_hints.get(node.name)
        if channels is None:
            continue
        pool = node.module
        if not isinstance(pool, AvgPool2d):
            continue
        kernel = pool.kernel_size
        kernel = (kernel, kernel) if isinstance(kernel, int) else tuple(kernel)
        stride = pool.stride if pool.stride is not None else kernel
        conv = _make_reciprocal_conv(channels, kernel, stride, pool.padding)
        replacement = Node(name=node.name, op=OpKind.DEPTHWISE_CONV, module=conv,
                           inputs=list(node.inputs),
                           attrs={**node.attrs, "reciprocal_avgpool": True})
        graph.replace_node(node.name, replacement)
        rewritten += 1
    return rewritten
