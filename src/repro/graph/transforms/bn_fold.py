"""Batch-norm folding transform (Section 4.1).

Folds a ``BatchNorm2d`` node into the weights and bias of the preceding
convolution / depthwise convolution / linear layer so the training and
inference graphs are mathematically equivalent:

``y = gamma * (W*x + b - mu) / sqrt(var + eps) + beta
   = (gamma / sqrt(var + eps)) * W * x + (beta + (b - mu) * gamma / sqrt(var + eps))``

The transform uses the *moving* statistics, matching the paper's requirement
that distributions seen during quantized training match inference; the
trainer separately freezes the moving statistics after one epoch.
"""

from __future__ import annotations

import numpy as np

from ...nn import BatchNorm2d, Conv2d, Linear, Parameter
from ..ir import GraphIR, OpKind

__all__ = ["fold_batch_norms"]


def _fold_into_conv(conv: Conv2d, bn: BatchNorm2d) -> None:
    scale, offset = bn.effective_scale_offset()
    # Conv weight layout is (C_out, C_in/groups, KH, KW): scale per C_out.
    conv.weight.data *= scale.reshape(-1, 1, 1, 1)
    bias = conv.bias.data if conv.bias is not None else np.zeros(conv.out_channels)
    new_bias = offset + bias * scale
    if conv.bias is None:
        conv.bias = Parameter(new_bias)
    else:
        conv.bias.data[...] = new_bias


def _fold_into_linear(linear: Linear, bn: BatchNorm2d) -> None:
    scale, offset = bn.effective_scale_offset()
    linear.weight.data *= scale.reshape(-1, 1)
    bias = linear.bias.data if linear.bias is not None else np.zeros(linear.out_features)
    new_bias = offset + bias * scale
    if linear.bias is None:
        linear.bias = Parameter(new_bias)
    else:
        linear.bias.data[...] = new_bias


def fold_batch_norms(graph: GraphIR) -> int:
    """Fold every ``conv -> batchnorm`` pair in place.

    Only folds when the convolution's *sole* consumer is the batch norm, so
    branches that also read the pre-normalization activations are left
    untouched.  Returns the number of batch norms folded.
    """
    folded = 0
    for bn_node in list(graph.nodes_of_kind(OpKind.BATCHNORM)):
        if bn_node.name not in graph.nodes:
            continue
        if len(bn_node.inputs) != 1:
            continue
        producer = graph.nodes[bn_node.inputs[0]]
        if producer.op not in (OpKind.CONV, OpKind.DEPTHWISE_CONV, OpKind.LINEAR):
            continue
        if len(graph.consumers(producer.name)) != 1:
            continue
        bn = bn_node.module
        if not isinstance(bn, BatchNorm2d):
            continue
        if producer.op == OpKind.LINEAR:
            _fold_into_linear(producer.module, bn)
        else:
            _fold_into_conv(producer.module, bn)
        graph.remove_node(bn_node.name)
        folded += 1
    return folded
