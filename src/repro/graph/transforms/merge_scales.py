"""Scale-merging analysis (Section 4.1 / 4.3).

Scale-preserving ops — concat, bias-add, eltwise-add and maximum (leaky
relu) — require their inputs to share a single quantization scale so the op
can run directly on integer codes.  This analysis walks the graph and
returns the groups of producer nodes whose output quantizers must be merged;
the quantization pass realises a merge by routing every member through the
same quantizer module.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir import GraphIR, OpKind

__all__ = ["ScaleGroup", "find_scale_merge_groups"]


@dataclass(frozen=True)
class ScaleGroup:
    """A set of producer node names that must share one output scale."""

    consumer: str
    op: str
    members: tuple[str, ...]


def find_scale_merge_groups(graph: GraphIR) -> list[ScaleGroup]:
    """Return one :class:`ScaleGroup` per scale-preserving op in the graph."""
    groups: list[ScaleGroup] = []
    for node in graph.topological_order():
        if node.op in (OpKind.ADD, OpKind.QUANT_ADD, OpKind.CONCAT, OpKind.QUANT_CONCAT):
            groups.append(ScaleGroup(consumer=node.name, op=node.op,
                                     members=tuple(node.inputs)))
        elif node.op in (OpKind.LEAKY_RELU, OpKind.QUANT_LEAKY_RELU):
            groups.append(ScaleGroup(consumer=node.name, op=node.op,
                                     members=tuple(node.inputs)))
    return groups
