"""Concat-of-concat collapsing transform (Section 4.1).

Inception-style graphs sometimes concatenate the result of another concat;
since both share the axis, the nested concat can be inlined into its
consumer, so the quantization pass only needs to merge one set of input
scales.
"""

from __future__ import annotations

from ..ir import GraphIR, OpKind

__all__ = ["collapse_concats"]


def collapse_concats(graph: GraphIR) -> int:
    """Inline concat nodes whose only consumer is another same-axis concat."""
    collapsed = 0
    changed = True
    while changed:
        changed = False
        for node in list(graph.nodes_of_kind(OpKind.CONCAT)):
            inner_names = [
                name for name in node.inputs
                if name in graph.nodes
                and graph.nodes[name].op == OpKind.CONCAT
                and graph.nodes[name].attrs.get("axis", 1) == node.attrs.get("axis", 1)
                and len(graph.consumers(name)) == 1
            ]
            if not inner_names:
                continue
            new_inputs: list[str] = []
            for name in node.inputs:
                if name in inner_names:
                    new_inputs.extend(graph.nodes[name].inputs)
                else:
                    new_inputs.append(name)
            node.inputs = new_inputs
            for name in inner_names:
                inner = graph.nodes[name]
                inner.inputs = []
                graph._unregister_module(inner)
                del graph.nodes[name]
                collapsed += 1
            changed = True
    return collapsed
