"""Quantization modes: static (calibrate-only) and retrain (Section 4.2).

* **Static mode** — thresholds come purely from calibration statistics:
  weights use MAX, activations minimize the local KL-J distance, layer by
  layer in strict topological order so every layer is calibrated against
  already-quantized inputs.  Nothing is trained.
* **Retrain mode** — produces a quantized *training* graph.  In ``wt`` mode
  only the weights train (thresholds stay at their calibrated values); in
  ``wt,th`` mode (TQT) weights and log-thresholds train jointly on the
  global loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal

import numpy as np

from ..autograd import Tensor, no_grad
from ..quant.config import LayerPrecision
from ..quant.qmodules import ActivationQuantizer, QuantScheme
from .ir import GraphIR
from .quantize import (
    QuantizationReport,
    clone_graph,
    collect_activation_quantizers,
    quantize_graph,
)

__all__ = [
    "RetrainMode",
    "QuantizedModel",
    "calibrate_activations",
    "quantize_static",
    "prepare_retrain",
]

RetrainMode = Literal["static", "wt", "wt,th"]


@dataclass
class QuantizedModel:
    """A quantized graph plus the metadata the trainer needs."""

    graph: GraphIR
    scheme: QuantScheme
    mode: RetrainMode
    report: QuantizationReport
    calibration_thresholds: dict[str, float]


def _ordered_activation_quantizers(graph: GraphIR) -> list[tuple[str, ActivationQuantizer]]:
    """Activation quantizers in graph-topological order.

    Quantizers attached to the same node keep their discovery order
    (input, internal, output), which matches the data flow inside the node.
    """
    quantizers = collect_activation_quantizers(graph)
    node_order = {node.name: i for i, node in enumerate(graph.topological_order())}

    def sort_key(item: tuple[str, ActivationQuantizer]) -> tuple[int, str]:
        path = item[0]
        node_attr = path.split(".")[0]
        node_name = node_attr.replace("node_", "", 1)
        # Attribute names had '/', '.' and '-' replaced by '_' at registration
        # time; fall back to a large index when the node cannot be recovered.
        for candidate, index in node_order.items():
            sanitized = candidate.replace("/", "_").replace(".", "_").replace("-", "_")
            if sanitized == node_name:
                return index, path
        return len(node_order), path

    return sorted(quantizers.items(), key=sort_key)


def calibrate_activations(graph: GraphIR, calibration_batches: Iterable[np.ndarray],
                          sequential: bool = True) -> dict[str, float]:
    """Calibrate every activation quantizer from calibration data.

    Parameters
    ----------
    graph: a graph already rewritten by :func:`quantize_graph`.
    calibration_batches: iterable of input arrays (NCHW); re-iterated once
        per layer in sequential mode, so pass a list.
    sequential: calibrate layers one at a time in topological order (the
        paper's procedure — inputs to a layer are quantized and fixed before
        the layer itself is calibrated).  ``False`` collects statistics for
        all layers in a single pass, which is faster but less faithful.

    Returns a mapping from quantizer path to the calibrated raw threshold.
    """
    batches = list(calibration_batches)
    if not batches:
        raise ValueError("calibration requires at least one batch")
    ordered = _ordered_activation_quantizers(graph)
    thresholds: dict[str, float] = {}
    graph.eval()

    if sequential:
        # Start from a fully bypassed graph, then lock in one quantizer at a time.
        for _, quantizer in ordered:
            quantizer.set_mode("bypass")
        for path, quantizer in ordered:
            quantizer.start_calibration()
            with no_grad():
                for batch in batches:
                    graph(Tensor(batch))
            thresholds[path] = quantizer.finalize_calibration()
    else:
        for _, quantizer in ordered:
            quantizer.start_calibration()
        with no_grad():
            for batch in batches:
                graph(Tensor(batch))
        for path, quantizer in ordered:
            thresholds[path] = quantizer.finalize_calibration()
    graph.train()
    return thresholds


def quantize_static(graph: GraphIR, calibration_batches: Iterable[np.ndarray],
                    precision: LayerPrecision | None = None,
                    method: str = "tqt", sequential: bool = True,
                    copy: bool = True) -> QuantizedModel:
    """Static quantization: MAX weights, KL-J activations, no training.

    The input graph should be the FP32 graph *after* the optimization passes
    (:func:`repro.graph.transforms.run_default_optimizations`).
    """
    target = clone_graph(graph) if copy else graph
    scheme = QuantScheme(
        method=method,
        precision=precision or LayerPrecision(),
        train_thresholds=False,
        weight_init="max",
        activation_init="kl-j",
    )
    report = quantize_graph(target, scheme)
    thresholds = calibrate_activations(target, calibration_batches, sequential=sequential)
    return QuantizedModel(graph=target, scheme=scheme, mode="static",
                          report=report, calibration_thresholds=thresholds)


def prepare_retrain(graph: GraphIR, calibration_batches: Iterable[np.ndarray],
                    mode: RetrainMode = "wt,th",
                    precision: LayerPrecision | None = None,
                    method: str = "tqt", sequential: bool = True,
                    copy: bool = True) -> QuantizedModel:
    """Build a quantized training graph for wt-only or wt+th (TQT) retraining.

    Threshold initialization follows Table 2: weights use MAX for wt-only
    mode and 3SD for wt+th mode; activations are always KL-J calibrated.
    """
    if mode not in ("wt", "wt,th"):
        raise ValueError(f"retrain mode must be 'wt' or 'wt,th', got {mode!r}")
    target = clone_graph(graph) if copy else graph
    train_thresholds = mode == "wt,th"
    scheme = QuantScheme(
        method=method,
        precision=precision or LayerPrecision(),
        train_thresholds=train_thresholds,
        weight_init="3sd" if train_thresholds else "max",
        activation_init="kl-j",
    )
    report = quantize_graph(target, scheme)
    thresholds = calibrate_activations(target, calibration_batches, sequential=sequential)
    return QuantizedModel(graph=target, scheme=scheme, mode=mode,
                          report=report, calibration_thresholds=thresholds)
