"""Graffitist-style graph IR, optimization transforms and quantization modes."""

from .ir import GraphIR, GraphBuilder, Node, OpKind
from .quantize import (
    quantize_graph,
    clone_graph,
    QuantizationReport,
    collect_activation_quantizers,
    collect_tqt_quantizers,
    split_parameters,
)
from .modes import (
    QuantizedModel,
    RetrainMode,
    calibrate_activations,
    quantize_static,
    prepare_retrain,
)
from .export import (
    ConvLayerSpec,
    LinearLayerSpec,
    export_conv_layer,
    export_linear_layer,
    export_graph_specs,
    integer_conv_forward,
    integer_linear_forward,
    check_conv_bit_accuracy,
)
from . import transforms

__all__ = [
    "GraphIR",
    "GraphBuilder",
    "Node",
    "OpKind",
    "quantize_graph",
    "clone_graph",
    "QuantizationReport",
    "collect_activation_quantizers",
    "collect_tqt_quantizers",
    "split_parameters",
    "QuantizedModel",
    "RetrainMode",
    "calibrate_activations",
    "quantize_static",
    "prepare_retrain",
    "ConvLayerSpec",
    "LinearLayerSpec",
    "export_conv_layer",
    "export_linear_layer",
    "export_graph_specs",
    "integer_conv_forward",
    "integer_linear_forward",
    "check_conv_bit_accuracy",
    "transforms",
]
