"""Fixed-point inference export and bit-accuracy verification (Section 4.2).

The retrain/static graphs built by :mod:`repro.graph.modes` emulate
quantization with fake-quant nodes in floating point.  This module exports
the pieces a fixed-point target needs — integer weight/bias codes and
per-tensor fractional lengths — and provides an integer-arithmetic execution
path (built on :mod:`repro.quant.fixed_point`) used to verify that the
fake-quantized graph is *bit-accurate* to the integer implementation, which
is the check the paper performed between its CPU inference graphs and the
FPGA.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor, no_grad
from ..quant.config import QuantConfig
from ..quant.fixed_point import integer_conv2d, integer_matmul, shift_requantize
from ..quant.qmodules import QuantizedConv2d, QuantizedLinear
from ..quant.tqt import TQTQuantizer
from .ir import GraphIR, OpKind

__all__ = [
    "ConvLayerSpec",
    "LinearLayerSpec",
    "export_conv_layer",
    "export_linear_layer",
    "export_graph_specs",
    "integer_conv_forward",
    "integer_linear_forward",
    "check_conv_bit_accuracy",
]


@dataclass
class ConvLayerSpec:
    """Deployable description of one quantized convolution."""

    name: str
    weight_codes: np.ndarray          # int codes, (C_out, C_in/groups, KH, KW)
    weight_fraction: int              # f_w with s_w = 2^-f_w
    bias_codes: np.ndarray | None     # int codes at accumulator scale
    input_fraction: int
    output_fraction: int
    output_config: QuantConfig
    stride: tuple | int
    padding: tuple | int
    groups: int
    activation: str

    @property
    def accumulator_fraction(self) -> int:
        return self.weight_fraction + self.input_fraction

    @property
    def requantize_shift(self) -> int:
        """Right-shift converting accumulator scale to output scale (Eq. 16)."""
        return self.accumulator_fraction - self.output_fraction


@dataclass
class LinearLayerSpec:
    """Deployable description of one quantized fully connected layer."""

    name: str
    weight_codes: np.ndarray
    weight_fraction: int
    bias_codes: np.ndarray | None
    input_fraction: int
    output_fraction: int
    output_config: QuantConfig
    activation: str

    @property
    def accumulator_fraction(self) -> int:
        return self.weight_fraction + self.input_fraction

    @property
    def requantize_shift(self) -> int:
        return self.accumulator_fraction - self.output_fraction


def _fraction_length(quantizer: TQTQuantizer) -> int:
    value = quantizer.fractional_length
    return int(np.asarray(value).reshape(-1)[0])


def _require_tqt(module, what: str) -> TQTQuantizer:
    if not isinstance(module, TQTQuantizer):
        raise TypeError(f"fixed-point export requires TQT (power-of-2) quantizers for {what}")
    return module


def export_conv_layer(layer: QuantizedConv2d, input_fraction: int) -> ConvLayerSpec:
    """Export a quantized conv layer given the fractional length of its input."""
    weight_quant = _require_tqt(layer.weight_quantizer, "weights")
    output_quant = _require_tqt(layer.output_quantizer.impl, "activations")
    weight_fraction = _fraction_length(weight_quant)
    weight_codes = weight_quant.quantize_to_integers(layer.conv.weight.data)
    bias_codes = None
    if layer.conv.bias is not None:
        # Bias is folded in at accumulator scale s_in * s_w = 2^-(f_in + f_w).
        accumulator_scale = 2.0 ** (-(weight_fraction + input_fraction))
        bias_codes = np.rint(layer.conv.bias.data / accumulator_scale).astype(np.int64)
    return ConvLayerSpec(
        name=layer.name or "conv",
        weight_codes=weight_codes,
        weight_fraction=weight_fraction,
        bias_codes=bias_codes,
        input_fraction=input_fraction,
        output_fraction=_fraction_length(output_quant),
        output_config=output_quant.config,
        stride=layer.conv.stride,
        padding=layer.conv.padding,
        groups=layer.conv.groups,
        activation=layer.activation,
    )


def export_linear_layer(layer: QuantizedLinear, input_fraction: int) -> LinearLayerSpec:
    weight_quant = _require_tqt(layer.weight_quantizer, "weights")
    output_quant = _require_tqt(layer.output_quantizer.impl, "activations")
    weight_fraction = _fraction_length(weight_quant)
    weight_codes = weight_quant.quantize_to_integers(layer.linear.weight.data)
    bias_codes = None
    if layer.linear.bias is not None:
        accumulator_scale = 2.0 ** (-(weight_fraction + input_fraction))
        bias_codes = np.rint(layer.linear.bias.data / accumulator_scale).astype(np.int64)
    return LinearLayerSpec(
        name=layer.name or "linear",
        weight_codes=weight_codes,
        weight_fraction=weight_fraction,
        bias_codes=bias_codes,
        input_fraction=input_fraction,
        output_fraction=_fraction_length(output_quant),
        output_config=output_quant.config,
        activation=layer.activation,
    )


def export_graph_specs(graph: GraphIR, input_fraction: int) -> dict[str, ConvLayerSpec | LinearLayerSpec]:
    """Export every quantized compute layer of a sequential (chain) graph.

    The input fractional length of each layer is the output fractional
    length of its (single) producing compute layer; non-compute nodes pass
    the fraction through unchanged.  Graphs with branching compute paths
    should export layers individually with :func:`export_conv_layer`.
    """
    specs: dict[str, ConvLayerSpec | LinearLayerSpec] = {}
    fractions: dict[str, int] = {}
    for node in graph.topological_order():
        if node.op == OpKind.INPUT:
            fractions[node.name] = input_fraction
            continue
        producer_fraction = fractions[node.inputs[0]] if node.inputs else input_fraction
        if node.op == OpKind.QUANT_CONV and isinstance(node.module, QuantizedConv2d):
            spec = export_conv_layer(node.module, producer_fraction)
            specs[node.name] = spec
            fractions[node.name] = spec.output_fraction
        elif node.op == OpKind.QUANT_LINEAR and isinstance(node.module, QuantizedLinear):
            spec = export_linear_layer(node.module, producer_fraction)
            specs[node.name] = spec
            fractions[node.name] = spec.output_fraction
        elif node.op == OpKind.QUANTIZE:
            quantizer = _require_tqt(node.module.quantizer.impl, "input")
            fractions[node.name] = _fraction_length(quantizer)
        else:
            fractions[node.name] = producer_fraction
    return specs


def _apply_integer_activation(codes: np.ndarray, activation: str) -> np.ndarray:
    if activation == "none":
        return codes
    if activation in ("relu", "relu6"):
        # ReLU on integer codes is a max with zero; ReLU6's upper clip is
        # already enforced by the unsigned saturation of the output stage.
        return np.maximum(codes, 0)
    raise ValueError(f"unsupported integer activation {activation!r}")


def integer_conv_forward(spec: ConvLayerSpec, input_codes: np.ndarray) -> np.ndarray:
    """Run one conv layer entirely in integer arithmetic."""
    accumulator = integer_conv2d(input_codes, spec.weight_codes, spec.bias_codes,
                                 stride=spec.stride, padding=spec.padding, groups=spec.groups)
    accumulator = _apply_integer_activation(accumulator, spec.activation)
    return shift_requantize(accumulator, spec.requantize_shift, spec.output_config)


def integer_linear_forward(spec: LinearLayerSpec, input_codes: np.ndarray) -> np.ndarray:
    accumulator = integer_matmul(input_codes, spec.weight_codes.T)
    if spec.bias_codes is not None:
        accumulator = accumulator + spec.bias_codes.reshape(1, -1)
    accumulator = _apply_integer_activation(accumulator, spec.activation)
    return shift_requantize(accumulator, spec.requantize_shift, spec.output_config)


def check_conv_bit_accuracy(layer: QuantizedConv2d, x: np.ndarray,
                            input_quantizer: TQTQuantizer) -> dict[str, float]:
    """Compare the fake-quantized layer against its integer execution.

    Returns a dict with the number of mismatching codes and the maximum
    absolute code difference; bit-accuracy means both are zero.
    """
    input_fraction = int(np.asarray(input_quantizer.fractional_length).reshape(-1)[0])
    spec = export_conv_layer(layer, input_fraction)

    input_codes = input_quantizer.quantize_to_integers(x)
    integer_out = integer_conv_forward(spec, input_codes)

    with no_grad():
        fake_input = input_codes * float(input_quantizer.scale)
        fake_out = layer(Tensor(fake_input))
    output_quant = layer.output_quantizer.impl
    fake_codes = output_quant.quantize_to_integers(fake_out.data)

    mismatches = int(np.count_nonzero(fake_codes != integer_out))
    max_diff = float(np.abs(fake_codes - integer_out).max()) if fake_codes.size else 0.0
    return {"mismatches": mismatches, "max_code_difference": max_diff,
            "total": int(fake_codes.size)}
