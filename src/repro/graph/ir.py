"""Layer-level graph IR and functional builder (the Graffitist substrate).

The original Graffitist operates on TensorFlow GraphDefs.  Here the model
zoo builds networks through :class:`GraphBuilder` (a Keras-functional-style
API) into a :class:`GraphIR`: a DAG of named :class:`Node` objects, each
holding an op kind, an optional executable ``repro.nn`` module and its input
edges.  The IR is directly executable (``GraphIR`` is a ``Module``), and the
transform passes in :mod:`repro.graph.transforms` rewrite it in place before
the quantization pass converts nodes into the quantized modules of
:mod:`repro.quant.qmodules`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

from ..autograd import Tensor, concatenate
from ..nn import Module

__all__ = ["Node", "GraphIR", "GraphBuilder", "OpKind"]


class OpKind:
    """String constants for the op kinds the transforms recognise."""

    INPUT = "input"
    CONV = "conv"
    DEPTHWISE_CONV = "depthwise_conv"
    LINEAR = "linear"
    BATCHNORM = "batchnorm"
    RELU = "relu"
    RELU6 = "relu6"
    LEAKY_RELU = "leaky_relu"
    MAXPOOL = "maxpool"
    AVGPOOL = "avgpool"
    GLOBAL_AVGPOOL = "global_avgpool"
    FLATTEN = "flatten"
    ADD = "add"
    CONCAT = "concat"
    IDENTITY = "identity"
    DROPOUT = "dropout"
    QUANTIZE = "quantize"
    QUANT_CONV = "quant_conv"
    QUANT_LINEAR = "quant_linear"
    QUANT_ADD = "quant_add"
    QUANT_CONCAT = "quant_concat"
    QUANT_LEAKY_RELU = "quant_leaky_relu"

    COMPUTE_KINDS = (CONV, DEPTHWISE_CONV, LINEAR)
    ACTIVATION_KINDS = (RELU, RELU6)
    PASSTHROUGH_KINDS = (IDENTITY, DROPOUT)


@dataclass
class Node:
    """One vertex of the graph IR.

    Attributes
    ----------
    name: unique node name.
    op: op kind (see :class:`OpKind`).
    module: optional executable module implementing the op.
    inputs: names of producer nodes, in argument order.
    attrs: op-specific attributes (e.g. ``axis`` for concat).
    """

    name: str
    op: str
    module: Module | None = None
    inputs: list[str] = field(default_factory=list)
    attrs: dict = field(default_factory=dict)

    def copy(self) -> "Node":
        return Node(name=self.name, op=self.op, module=self.module,
                    inputs=list(self.inputs), attrs=dict(self.attrs))


class GraphIR(Module):
    """Executable DAG of layers.

    The graph owns its nodes in insertion order; :meth:`topological_order`
    re-derives execution order from the edges so transforms may insert nodes
    anywhere.  Parameters of node modules are exposed through the standard
    ``Module`` traversal so optimizers and the trainer work unchanged.
    """

    def __init__(self, name: str = "graph") -> None:
        super().__init__()
        self.graph_name = name
        self.nodes: "OrderedDict[str, Node]" = OrderedDict()
        self.input_names: list[str] = []
        self.output_name: str | None = None

    # ------------------------------------------------------------------ #
    # Construction / mutation
    # ------------------------------------------------------------------ #
    def add_node(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        if node.op == OpKind.INPUT:
            self.input_names.append(node.name)
        self._register_module(node)
        return node

    def _register_module(self, node: Node) -> None:
        if node.module is not None:
            attr_name = "node_" + node.name.replace("/", "_").replace(".", "_").replace("-", "_")
            setattr(self, attr_name, node.module)

    def _unregister_module(self, node: Node) -> None:
        attr_name = "node_" + node.name.replace("/", "_").replace(".", "_").replace("-", "_")
        if attr_name in self._modules:
            del self._modules[attr_name]
            object.__delattr__(self, attr_name)

    def remove_node(self, name: str, rewire_to: str | None = None) -> None:
        """Remove a node; consumers are rewired to ``rewire_to`` (or to the
        removed node's single input when not given)."""
        node = self.nodes[name]
        if rewire_to is None:
            if len(node.inputs) != 1:
                raise ValueError(
                    f"cannot remove {name!r} without rewire_to: it has {len(node.inputs)} inputs"
                )
            rewire_to = node.inputs[0]
        for other in self.nodes.values():
            other.inputs = [rewire_to if i == name else i for i in other.inputs]
        if self.output_name == name:
            self.output_name = rewire_to
        self._unregister_module(node)
        del self.nodes[name]

    def replace_node(self, name: str, new_node: Node) -> None:
        """Swap the implementation of a node, keeping its name and consumers."""
        if new_node.name != name:
            raise ValueError("replacement node must keep the original name")
        old = self.nodes[name]
        self._unregister_module(old)
        self.nodes[name] = new_node
        self._register_module(new_node)

    def insert_after(self, producer: str, node: Node) -> Node:
        """Insert ``node`` between ``producer`` and all of its consumers."""
        consumers = self.consumers(producer)
        self.add_node(node)
        node.inputs = [producer]
        for consumer in consumers:
            if consumer.name == node.name:
                continue
            consumer.inputs = [node.name if i == producer else i for i in consumer.inputs]
        if self.output_name == producer:
            self.output_name = node.name
        return node

    def set_output(self, name: str) -> None:
        if name not in self.nodes:
            raise KeyError(name)
        self.output_name = name

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def consumers(self, name: str) -> list[Node]:
        return [node for node in self.nodes.values() if name in node.inputs]

    def producers(self, name: str) -> list[Node]:
        return [self.nodes[i] for i in self.nodes[name].inputs]

    def nodes_of_kind(self, *kinds: str) -> list[Node]:
        return [node for node in self.nodes.values() if node.op in kinds]

    def topological_order(self) -> list[Node]:
        """Kahn's algorithm over the current edges."""
        in_degree = {name: len(node.inputs) for name, node in self.nodes.items()}
        ready = [name for name, degree in in_degree.items() if degree == 0]
        order: list[Node] = []
        while ready:
            current = ready.pop(0)
            order.append(self.nodes[current])
            for consumer in self.consumers(current):
                in_degree[consumer.name] -= consumer.inputs.count(current)
                if in_degree[consumer.name] == 0:
                    ready.append(consumer.name)
        if len(order) != len(self.nodes):
            unresolved = set(self.nodes) - {n.name for n in order}
            raise RuntimeError(f"graph has a cycle or dangling inputs: {sorted(unresolved)}")
        return order

    def validate(self) -> None:
        """Check edge consistency and reachability of the output."""
        for node in self.nodes.values():
            for producer in node.inputs:
                if producer not in self.nodes:
                    raise ValueError(f"node {node.name!r} references missing input {producer!r}")
        if self.output_name is None:
            raise ValueError("graph output is not set")
        self.topological_order()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def forward(self, x: Tensor) -> Tensor:
        if self.output_name is None:
            raise RuntimeError("graph output is not set")
        if len(self.input_names) != 1:
            raise RuntimeError("GraphIR.forward expects exactly one input node")
        values: dict[str, Tensor] = {}
        for node in self.topological_order():
            if node.op == OpKind.INPUT:
                values[node.name] = x
                continue
            args = [values[i] for i in node.inputs]
            values[node.name] = self._execute(node, args)
        return values[self.output_name]

    def _execute(self, node: Node, args: Sequence[Tensor]) -> Tensor:
        if node.module is not None:
            if node.op in (OpKind.ADD, OpKind.QUANT_ADD):
                return node.module(args[0], args[1])
            if node.op in (OpKind.CONCAT, OpKind.QUANT_CONCAT):
                return node.module(list(args))
            return node.module(args[0])
        # Structural ops without modules.
        if node.op == OpKind.ADD:
            return args[0] + args[1]
        if node.op == OpKind.CONCAT:
            return concatenate(list(args), axis=node.attrs.get("axis", 1))
        if node.op in OpKind.PASSTHROUGH_KINDS:
            return args[0]
        if node.op == OpKind.FLATTEN:
            return args[0].flatten(start_dim=node.attrs.get("start_dim", 1))
        raise RuntimeError(f"node {node.name!r} of kind {node.op!r} has no module to execute")

    # ------------------------------------------------------------------ #
    # Lowering
    # ------------------------------------------------------------------ #
    def lower_plan(self):
        """Lower this (quantized) graph into an integer execution plan.

        Convenience hook for :func:`repro.engine.lower_graph`; the graph must
        already have been through the optimization transforms and the
        quantization pass with TQT power-of-2 quantizers.
        """
        from ..engine.plan import lower_graph  # local import: engine builds on graph

        return lower_graph(self)

    # ------------------------------------------------------------------ #
    def summary(self) -> str:
        """Human-readable listing of the graph (one node per line)."""
        lines = [f"GraphIR {self.graph_name!r} ({len(self.nodes)} nodes)"]
        for node in self.topological_order():
            inputs = ", ".join(node.inputs) if node.inputs else "-"
            lines.append(f"  {node.name:<40s} {node.op:<18s} <- {inputs}")
        return "\n".join(lines)


class GraphBuilder:
    """Functional-style builder for :class:`GraphIR`.

    Example
    -------
    >>> from repro import nn
    >>> builder = GraphBuilder("tiny")
    >>> x = builder.input("images")
    >>> x = builder.layer("conv1", OpKind.CONV, nn.Conv2d(3, 8, 3, padding=1), x)
    >>> x = builder.layer("relu1", OpKind.RELU, nn.ReLU(), x)
    >>> graph = builder.build(x)
    """

    def __init__(self, name: str = "graph") -> None:
        self.graph = GraphIR(name)
        self._counter = 0

    def _unique(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def input(self, name: str = "input") -> str:
        self.graph.add_node(Node(name=name, op=OpKind.INPUT))
        return name

    def layer(self, name: str, op: str, module: Module | None, *inputs: str, **attrs) -> str:
        self.graph.add_node(Node(name=name, op=op, module=module,
                                 inputs=list(inputs), attrs=attrs))
        return name

    def add(self, name: str, a: str, b: str) -> str:
        return self.layer(name, OpKind.ADD, None, a, b)

    def concat(self, name: str, inputs: Sequence[str], axis: int = 1) -> str:
        self.graph.add_node(Node(name=name, op=OpKind.CONCAT, module=None,
                                 inputs=list(inputs), attrs={"axis": axis}))
        return name

    def build(self, output: str) -> GraphIR:
        self.graph.set_output(output)
        self.graph.validate()
        return self.graph
