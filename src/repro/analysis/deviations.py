"""Threshold-deviation and distribution-shift analyses (Figures 5, 6 and 10).

After TQT retraining the paper inspects, per quantized layer, the deviation
``d = Δ ceil(log2 t)`` between the calibrated and the trained threshold:
negative deviations mean the threshold moved *in* (precision over range, the
characteristic behaviour of depthwise-convolution weights), positive
deviations mean it moved *out* (range over precision).  Figure 6 histograms
these deviations for INT8 vs INT4 retraining; Figures 5/10 overlay the
thresholds on the weight/activation distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import GraphIR, collect_tqt_quantizers
from ..quant.qmodules import QuantizedConv2d, QuantizedLinear
from ..training.trainer import TrainingResult

__all__ = [
    "ThresholdDeviation",
    "collect_threshold_deviations",
    "deviation_histogram",
    "LayerDistribution",
    "collect_layer_distributions",
]


@dataclass(frozen=True)
class ThresholdDeviation:
    """Deviation record for one quantizer (one subplot of Figure 5/10)."""

    name: str
    bits: int
    kind: str                 # "weight" | "activation" | "bias"
    initial_log2_t: float
    trained_log2_t: float

    @property
    def initial_threshold(self) -> float:
        return float(2.0 ** self.initial_log2_t)

    @property
    def trained_threshold(self) -> float:
        return float(2.0 ** self.trained_log2_t)

    @property
    def deviation(self) -> int:
        """``d = ceil(log2 t_trained) - ceil(log2 t_initial)`` (integer bins)."""
        return int(np.ceil(self.trained_log2_t) - np.ceil(self.initial_log2_t))

    @property
    def prefers_precision(self) -> bool:
        return self.deviation < 0

    @property
    def prefers_range(self) -> bool:
        return self.deviation > 0


def _quantizer_kind(path: str) -> str:
    if "weight_quantizer" in path:
        return "weight"
    if "bias_quantizer" in path:
        return "bias"
    return "activation"


def collect_threshold_deviations(result: TrainingResult,
                                 graph: GraphIR | None = None) -> list[ThresholdDeviation]:
    """Build deviation records from a finished TQT training run.

    The bits are read from the graph when provided (so weight and activation
    quantizers can be separated by bit-width as in Figure 6); otherwise 0 is
    recorded.
    """
    bits_by_name: dict[str, int] = {}
    if graph is not None:
        for name, quantizer in collect_tqt_quantizers(graph).items():
            bits_by_name[name] = quantizer.config.bits
    deviations = []
    for name, initial in result.initial_thresholds.items():
        trained = result.final_thresholds.get(name, initial)
        deviations.append(ThresholdDeviation(
            name=name,
            bits=bits_by_name.get(name, 0),
            kind=_quantizer_kind(name),
            initial_log2_t=float(initial),
            trained_log2_t=float(trained),
        ))
    return deviations


def deviation_histogram(deviations: list[ThresholdDeviation],
                        kinds: tuple[str, ...] = ("weight", "activation")) -> dict[int, int]:
    """Histogram of integer threshold deviations (one Figure 6 panel)."""
    histogram: dict[int, int] = {}
    for record in deviations:
        if record.kind not in kinds:
            continue
        histogram[record.deviation] = histogram.get(record.deviation, 0) + 1
    return dict(sorted(histogram.items()))


@dataclass
class LayerDistribution:
    """Weight distribution and thresholds of one quantized compute layer."""

    name: str
    kind: str
    values: np.ndarray
    initial_threshold: float
    trained_threshold: float
    bits: int

    @property
    def clipped_fraction(self) -> float:
        """Fraction of values outside the trained threshold."""
        return float(np.mean(np.abs(self.values) > self.trained_threshold))


def collect_layer_distributions(graph: GraphIR, result: TrainingResult,
                                only_changed: bool = True) -> list[LayerDistribution]:
    """Gather weight distributions + thresholds for Figure 5/10-style panels.

    ``only_changed`` keeps only layers whose threshold moved by a non-zero
    integer amount in the log domain, which is what the paper plots.
    """
    deviations = {d.name: d for d in collect_threshold_deviations(result, graph)}
    panels: list[LayerDistribution] = []
    for module_path, module in graph.named_modules():
        if not isinstance(module, (QuantizedConv2d, QuantizedLinear)):
            continue
        weight_path = f"{module_path}.weight_quantizer"
        record = deviations.get(weight_path)
        if record is None:
            continue
        if only_changed and record.deviation == 0:
            continue
        if isinstance(module, QuantizedConv2d):
            weights = module.conv.weight.data
            kind = "depthwise" if module.conv.groups > 1 else "dense"
        else:
            weights = module.linear.weight.data
            kind = "linear"
        panels.append(LayerDistribution(
            name=module_path,
            kind=kind,
            values=weights.ravel().copy(),
            initial_threshold=record.initial_threshold,
            trained_threshold=record.trained_threshold,
            bits=record.bits,
        ))
    return panels
