"""The toy L2 quantization problem of Section 3.4 and Appendix B.

A single quantizer is optimized against the least-squares reconstruction
loss ``L = (q(x; s) - x)^2 / 2`` on a fixed Gaussian input sample.  The toy
problem is what the paper uses to

* interpret the threshold/input gradients (Figure 2),
* compare raw-domain, log-domain and normed-log-domain threshold training
  under SGD and Adam across bit-widths and input scales (Figure 8),
* study post-convergence oscillations of Adam (Figure 9, Appendix C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor
from ..quant.config import QuantConfig
from ..quant.tqt import tqt_quantize

__all__ = ["ToyL2Problem", "ThresholdTrajectory", "train_threshold", "threshold_gradient_field"]


@dataclass
class ThresholdTrajectory:
    """Result of one toy-threshold training run."""

    method: str
    domain: str
    log2_t: np.ndarray          # per-step threshold values (log domain)
    losses: np.ndarray
    gradients: np.ndarray

    @property
    def final(self) -> float:
        return float(self.log2_t[-1])

    def settled_band(self, tail: int = 200) -> tuple[float, float]:
        """(min, max) of the trailing ``tail`` steps — the oscillation band."""
        tail_values = self.log2_t[-tail:]
        return float(tail_values.min()), float(tail_values.max())

    def oscillation_amplitude(self, tail: int = 200) -> float:
        low, high = self.settled_band(tail)
        return high - low


class ToyL2Problem:
    """L2 reconstruction loss of a single quantizer on a fixed Gaussian input."""

    def __init__(self, sigma: float = 1.0, bits: int = 8, signed: bool = True,
                 num_samples: int = 1000, power_of_2: bool = True, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.sigma = sigma
        self.config = QuantConfig(bits=bits, signed=signed, power_of_2=power_of_2)
        self.x = rng.normal(0.0, sigma, size=num_samples)

    # ------------------------------------------------------------------ #
    def loss_and_log_grad(self, log2_t: float, resample: np.ndarray | None = None
                          ) -> tuple[float, float]:
        """Loss value and gradient w.r.t. ``log2_t`` at a given threshold."""
        data = self.x if resample is None else resample
        x = Tensor(data)
        t = Tensor(np.asarray(float(log2_t)), requires_grad=True)
        q = tqt_quantize(x, t, self.config)
        diff = q - Tensor(data)
        loss = (diff * diff).sum() * 0.5
        loss.backward()
        return float(loss.data), float(t.grad)

    def loss_and_raw_grad(self, threshold: float) -> tuple[float, float]:
        """Gradient w.r.t. the raw threshold ``t`` (chain rule through log2)."""
        threshold = max(float(threshold), 1e-12)
        loss, log_grad = self.loss_and_log_grad(np.log2(threshold))
        # d/dt = d/d(log2 t) * 1 / (t ln 2)
        return loss, log_grad / (threshold * np.log(2.0))

    def input_gradients(self, log2_t: float) -> np.ndarray:
        """Overall loss gradient w.r.t. each input sample (Eq. 10).

        The loss references the *same* input tensor on both sides of the
        difference, so the gradient is ``(q - x)(dq/dx - 1)``: zero inside the
        clipping range (where dq/dx = 1) and ``x - q`` for clipped inputs,
        nudging them back toward the representable range.
        """
        x = Tensor(self.x, requires_grad=True)
        t = Tensor(np.asarray(float(log2_t)))
        q = tqt_quantize(x, t, self.config)
        diff = q - x
        loss = (diff * diff).sum() * 0.5
        loss.backward()
        return np.asarray(x.grad)

    def optimal_log_threshold(self, search: np.ndarray | None = None) -> float:
        """Brute-force minimizer of the loss over a grid of log thresholds."""
        grid = search if search is not None else np.linspace(
            np.log2(self.sigma) - 4.0, np.log2(self.sigma) + 6.0, 201)
        losses = [self.loss_and_log_grad(value)[0] for value in grid]
        return float(grid[int(np.argmin(losses))])


def threshold_gradient_field(problem: ToyL2Problem, log2_t_grid: np.ndarray
                             ) -> dict[str, np.ndarray]:
    """Loss and gradient (raw and log domain) over a grid of thresholds (Fig. 7)."""
    losses, log_grads, raw_grads = [], [], []
    for value in log2_t_grid:
        loss, log_grad = problem.loss_and_log_grad(float(value))
        losses.append(loss)
        log_grads.append(log_grad)
        raw_grads.append(log_grad / (2.0 ** value * np.log(2.0)))
    return {
        "log2_t": np.asarray(log2_t_grid, dtype=np.float64),
        "loss": np.asarray(losses),
        "log_grad": np.asarray(log_grads),
        "raw_grad": np.asarray(raw_grads),
    }


def _normed_gradient(grad: float, state: dict, beta: float = 0.999, eps: float = 1e-12,
                     clip: bool = True) -> float:
    """Equations (17)/(18): normalize by a bias-corrected moving RMS, then tanh."""
    state["v"] = beta * state.get("v", 0.0) + (1.0 - beta) * grad ** 2
    state["count"] = state.get("count", 0) + 1
    corrected = state["v"] / (1.0 - beta ** state["count"])
    normed = grad / (np.sqrt(corrected) + eps)
    return float(np.tanh(normed)) if clip else float(normed)


def train_threshold(problem: ToyL2Problem, init_log2_t: float, steps: int = 2000,
                    lr: float = 0.1, method: str = "adam", domain: str = "log",
                    beta1: float = 0.9, beta2: float = 0.999,
                    stochastic: bool = True, batch_size: int = 1000,
                    seed: int = 0) -> ThresholdTrajectory:
    """Train the toy threshold with one of the Figure 8 configurations.

    Parameters
    ----------
    method: ``"sgd"``, ``"normed_sgd"`` or ``"adam"``.
    domain: ``"log"`` trains ``log2 t``; ``"raw"`` trains ``t`` directly.
    stochastic: resample the Gaussian input every step (as in the paper's
        figure); ``False`` keeps a fixed sample for deterministic dynamics.
    """
    rng = np.random.default_rng(seed)
    value = float(init_log2_t) if domain == "log" else float(2.0 ** init_log2_t)
    trajectory, losses, gradients = [], [], []
    adam_m = adam_v = 0.0
    norm_state: dict = {}

    for step in range(1, steps + 1):
        sample = rng.normal(0.0, problem.sigma, size=batch_size) if stochastic else None
        if domain == "log":
            loss, grad = problem.loss_and_log_grad(value, resample=sample)
            current_log = value
        else:
            threshold = max(value, 1e-12)
            loss, log_grad = (problem.loss_and_log_grad(np.log2(threshold), resample=sample))
            grad = log_grad / (threshold * np.log(2.0))
            current_log = np.log2(threshold)
        trajectory.append(current_log)
        losses.append(loss)
        gradients.append(grad)

        if method == "sgd":
            update = lr * grad
        elif method == "normed_sgd":
            update = lr * _normed_gradient(grad, norm_state, beta=beta2)
        elif method == "adam":
            adam_m = beta1 * adam_m + (1.0 - beta1) * grad
            adam_v = beta2 * adam_v + (1.0 - beta2) * grad ** 2
            m_hat = adam_m / (1.0 - beta1 ** step)
            v_hat = adam_v / (1.0 - beta2 ** step)
            update = lr * m_hat / (np.sqrt(v_hat) + 1e-12)
        else:
            raise ValueError(f"unknown method {method!r}")
        value -= update
        if domain == "raw":
            value = max(value, 1e-12)

    return ThresholdTrajectory(method=method, domain=domain,
                               log2_t=np.asarray(trajectory),
                               losses=np.asarray(losses),
                               gradients=np.asarray(gradients))
