"""Threshold-gradient landscapes across input scales (Figure 7 / Appendix B.2).

For Gaussian inputs with standard deviations spanning several orders of
magnitude, the L2-loss gradient is evaluated as a function of the log
threshold in three parameterizations:

* raw-threshold gradient ``∇_t L``;
* log-threshold gradient ``∇_(log2 t) L``;
* normed log-threshold gradient (Eq. 17/18), the "desired" curve.

The paper's scale-invariance argument is that only the normed version has
gradient magnitudes independent of both the threshold position and the
input scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .toy_l2 import ToyL2Problem, threshold_gradient_field

__all__ = ["GradientLandscape", "compute_gradient_landscape", "scale_invariance_metrics"]


@dataclass
class GradientLandscape:
    """Gradients over a log2-threshold grid for one input scale."""

    sigma: float
    log2_t: np.ndarray
    raw_grad: np.ndarray
    log_grad: np.ndarray
    normed_log_grad: np.ndarray
    loss: np.ndarray


def _normalize(gradients: np.ndarray) -> np.ndarray:
    """Stateless analogue of Eq. 18 over a static landscape: tanh(g / rms(g))."""
    rms = np.sqrt(np.mean(gradients ** 2)) + 1e-12
    return np.tanh(gradients / rms)


def compute_gradient_landscape(sigma: float, bits: int = 8,
                               log2_t_range: tuple[float, float] = (-10.0, 10.0),
                               num_points: int = 161, seed: int = 0) -> GradientLandscape:
    """Evaluate the Figure 7 curves for one input scale."""
    problem = ToyL2Problem(sigma=sigma, bits=bits, seed=seed)
    grid = np.linspace(log2_t_range[0], log2_t_range[1], num_points)
    field = threshold_gradient_field(problem, grid)
    return GradientLandscape(
        sigma=sigma,
        log2_t=grid,
        raw_grad=field["raw_grad"],
        log_grad=field["log_grad"],
        normed_log_grad=_normalize(field["log_grad"]),
        loss=field["loss"],
    )


def scale_invariance_metrics(landscapes: list[GradientLandscape]) -> dict[str, float]:
    """Quantify threshold/input scale invariance across landscapes.

    For each parameterization we measure the spread (max/min ratio) of the
    gradient magnitude at a fixed offset from each landscape's optimum; a
    scale-invariant parameterization has a spread close to 1, a
    scale-dependent one has a spread of many orders of magnitude.
    """
    def magnitude_at_offset(landscape: GradientLandscape, grads: np.ndarray,
                            offset: float = 2.0) -> float:
        optimum = landscape.log2_t[int(np.argmin(landscape.loss))]
        index = int(np.argmin(np.abs(landscape.log2_t - (optimum + offset))))
        return float(np.abs(grads[index])) + 1e-30

    spreads = {}
    for name in ("raw_grad", "log_grad", "normed_log_grad"):
        values = [magnitude_at_offset(l, getattr(l, name)) for l in landscapes]
        spreads[name] = float(max(values) / min(values))
    return spreads
