"""Adam convergence analysis for log-threshold training (Appendix C, Fig. 9, Table 4).

The paper models the post-convergence behaviour of a power-of-2-scaled
threshold as a bang-bang oscillation around the critical integer ``log2 t*``:
a large gradient ``g_l`` is seen for one step on the low side and a small
gradient ``g_h`` for ``T - 1`` steps on the high side.  With the gradient
ratio ``r_g = -g_l / g_h`` the analysis derives

* oscillation period ``T ≈ r_g`` (Eq. 22),
* worst-case excursion ``Δθ_max < α √r_g`` (Eq. 29),
* the Table 4 hyperparameter guidelines.

This module provides both the closed-form quantities and a direct simulation
of Adam on the idealized two-level gradient signal so tests can verify the
bounds, plus a measurement helper that extracts ``T`` and the excursion from
an actual toy-L2 training trajectory (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .toy_l2 import ThresholdTrajectory, ToyL2Problem

__all__ = [
    "find_critical_integer_threshold",
    "estimate_gradient_ratio",
    "oscillation_period_estimate",
    "max_excursion_bound",
    "simulate_bang_bang_adam",
    "measure_oscillations",
    "BangBangSimulation",
]


def find_critical_integer_threshold(problem: ToyL2Problem, search_low: int = -12,
                                    search_high: int = 12) -> float:
    """Locate the integer ``log2 t*`` where the threshold gradient flips sign.

    With power-of-2 scaling the gradient is constant within each integer bin
    (the scale only depends on ``ceil(log2 t)``), so the bang-bang dynamics of
    Appendix C happen around the unique integer where the per-bin gradient
    turns from negative (threshold too small) to positive (threshold too
    large).
    """
    previous_grad = None
    for k in range(search_low, search_high + 1):
        _, grad = problem.loss_and_log_grad(k - 0.5)   # mid-bin sample
        if previous_grad is not None and previous_grad < 0 <= grad:
            return float(k - 1)
        previous_grad = grad
    raise ValueError("no sign change found in the searched range")


def estimate_gradient_ratio(problem: ToyL2Problem, log2_t_star: float | None = None,
                            delta: float = 0.5) -> float:
    """Empirical ``r_g = -g_l / g_h`` around the critical integer threshold.

    ``g_l`` is the (negative) gradient in the bin just below ``log2 t*`` and
    ``g_h`` the (positive) gradient just above it; Appendix C predicts the
    Adam oscillation period ``T ≈ r_g``.
    """
    if log2_t_star is None:
        log2_t_star = find_critical_integer_threshold(problem)
    _, g_low = problem.loss_and_log_grad(log2_t_star - delta)
    _, g_high = problem.loss_and_log_grad(log2_t_star + delta)
    if g_high == 0:
        return float("inf")
    return float(abs(g_low) / abs(g_high))


def oscillation_period_estimate(gradient_ratio: float) -> float:
    """Appendix C result: the oscillation period at convergence is ``T ≈ r_g``."""
    return float(gradient_ratio)


def max_excursion_bound(gradient_ratio: float, learning_rate: float) -> float:
    """Equation (29): the worst-case log-threshold excursion is ``α √r_g``."""
    return float(learning_rate * np.sqrt(max(gradient_ratio, 0.0)))


@dataclass
class BangBangSimulation:
    """Result of simulating Adam on the idealized two-level gradient."""

    theta: np.ndarray
    period: float
    excursion: float
    gradient_ratio: float
    learning_rate: float

    @property
    def excursion_bound(self) -> float:
        return max_excursion_bound(self.gradient_ratio, self.learning_rate)


def simulate_bang_bang_adam(gradient_ratio: float, g_high: float = 1.0,
                            learning_rate: float = 0.01, beta1: float = 0.9,
                            beta2: float = 0.999, steps: int = 20000,
                            start_theta: float = 0.5) -> BangBangSimulation:
    """Simulate Adam on the idealized bang-bang gradient field of Appendix C.

    The gradient is ``+g_h`` while the parameter is above the integer
    boundary at 0 and ``-g_l = -r_g * g_h`` while it is below, which drives
    the parameter back up — the negative-feedback loop the paper analyses.
    """
    g_low = gradient_ratio * g_high
    theta = start_theta
    m = v = 0.0
    history = np.zeros(steps)
    for step in range(1, steps + 1):
        grad = g_high if theta >= 0.0 else -g_low
        m = beta1 * m + (1.0 - beta1) * grad
        v = beta2 * v + (1.0 - beta2) * grad ** 2
        m_hat = m / (1.0 - beta1 ** step)
        v_hat = v / (1.0 - beta2 ** step)
        theta -= learning_rate * m_hat / (np.sqrt(v_hat) + 1e-12)
        history[step - 1] = theta

    tail = history[steps // 2:]
    period = _mean_period(tail)
    excursion = float(tail.max() - tail.min())
    return BangBangSimulation(theta=history, period=period, excursion=excursion,
                              gradient_ratio=gradient_ratio, learning_rate=learning_rate)


def _mean_period(values: np.ndarray) -> float:
    """Mean distance between downward crossings of the mean level."""
    level = values.mean()
    above = values >= level
    crossings = np.where(above[:-1] & ~above[1:])[0]
    if len(crossings) < 2:
        return float(len(values))
    return float(np.mean(np.diff(crossings)))


def measure_oscillations(trajectory: ThresholdTrajectory, tail: int = 500) -> dict[str, float]:
    """Measure oscillation period and amplitude from a toy-L2 trajectory (Fig. 9)."""
    values = trajectory.log2_t[-tail:]
    period = _mean_period(values)
    return {
        "period": period,
        "amplitude": float(values.max() - values.min()),
        "mean_level": float(values.mean()),
    }
