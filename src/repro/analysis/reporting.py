"""Plain-text report formatting for the benchmark harness.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep that formatting consistent and terminal-friendly
(no plotting dependencies are available offline).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["format_table", "format_histogram", "format_series", "format_percent"]


def format_percent(value: float, decimals: int = 1) -> str:
    """Format a [0, 1] fraction as a percentage string."""
    return f"{value * 100:.{decimals}f}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str | None = None) -> str:
    """Render a fixed-width ASCII table."""
    rows = [[str(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_histogram(histogram: dict[int, int], title: str | None = None,
                     bar_width: int = 40) -> str:
    """Render an integer-keyed histogram as horizontal ASCII bars."""
    lines = []
    if title:
        lines.append(title)
    if not histogram:
        lines.append("(empty)")
        return "\n".join(lines)
    max_count = max(histogram.values())
    for key in sorted(histogram):
        count = histogram[key]
        bar = "#" * max(1, int(round(bar_width * count / max_count))) if count else ""
        lines.append(f"  {key:+3d} | {bar} {count}")
    return "\n".join(lines)


def format_series(x: np.ndarray, y: np.ndarray, name: str, max_points: int = 12,
                  precision: int = 4) -> str:
    """Render a (sub-sampled) numeric series as a single report line."""
    x = np.asarray(x)
    y = np.asarray(y)
    if len(x) > max_points:
        idx = np.linspace(0, len(x) - 1, max_points).astype(int)
        x, y = x[idx], y[idx]
    pairs = ", ".join(f"({xi:.{precision}g}, {yi:.{precision}g})" for xi, yi in zip(x, y))
    return f"{name}: {pairs}"
