"""Analyses backing the paper's figures and appendices."""

from .toy_l2 import (
    ToyL2Problem,
    ThresholdTrajectory,
    train_threshold,
    threshold_gradient_field,
)
from .transfer_curves import (
    TransferCurves,
    tqt_transfer_curves,
    fakequant_transfer_curves,
    clipping_limits,
)
from .gradient_landscape import (
    GradientLandscape,
    compute_gradient_landscape,
    scale_invariance_metrics,
)
from .convergence import (
    find_critical_integer_threshold,
    estimate_gradient_ratio,
    oscillation_period_estimate,
    max_excursion_bound,
    simulate_bang_bang_adam,
    measure_oscillations,
    BangBangSimulation,
)
from .deviations import (
    ThresholdDeviation,
    collect_threshold_deviations,
    deviation_histogram,
    LayerDistribution,
    collect_layer_distributions,
)
from .reporting import format_table, format_histogram, format_series, format_percent

__all__ = [
    "ToyL2Problem",
    "ThresholdTrajectory",
    "train_threshold",
    "threshold_gradient_field",
    "TransferCurves",
    "tqt_transfer_curves",
    "fakequant_transfer_curves",
    "clipping_limits",
    "GradientLandscape",
    "compute_gradient_landscape",
    "scale_invariance_metrics",
    "find_critical_integer_threshold",
    "estimate_gradient_ratio",
    "oscillation_period_estimate",
    "max_excursion_bound",
    "simulate_bang_bang_adam",
    "measure_oscillations",
    "BangBangSimulation",
    "ThresholdDeviation",
    "collect_threshold_deviations",
    "deviation_histogram",
    "LayerDistribution",
    "collect_layer_distributions",
    "format_table",
    "format_histogram",
    "format_series",
    "format_percent",
]
