"""Quantizer transfer curves (Figures 1 and 3).

For a grid of input values ``x`` and a fixed threshold, these routines
evaluate the forward value of the quantizer, its local gradients with
respect to the input and the log2-threshold, and the overall gradients of
the toy L2 loss — the quantities plotted in Figure 1 (TQT) and Figure 3
(TensorFlow FakeQuant with clipped gradients).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autograd import Tensor
from ..quant.config import QuantConfig
from ..quant.fake_quant import fake_quantize
from ..quant.tqt import compute_scale, tqt_quantize

__all__ = ["TransferCurves", "tqt_transfer_curves", "fakequant_transfer_curves",
           "clipping_limits"]


@dataclass
class TransferCurves:
    """Sampled forward/backward transfer curves of a quantizer."""

    x: np.ndarray
    forward: np.ndarray
    grad_input: np.ndarray          # local d q / d x
    grad_threshold: np.ndarray      # local d q / d (log2 t)  (or d q / d thresholds)
    loss_grad_input: np.ndarray     # d L2 / d x       with L = (q - x)^2 / 2
    loss_grad_threshold: np.ndarray  # d L2 / d (log2 t)
    clip_low: float
    clip_high: float


def clipping_limits(threshold: float, config: QuantConfig) -> tuple[float, float]:
    """Exact real-domain clipping limits ``x_n = s(n - 0.5)``, ``x_p = s(p + 0.5)``."""
    s = float(compute_scale(np.log2(threshold), config))
    return s * (config.qmin - 0.5), s * (config.qmax + 0.5)


def _per_point_gradients(x_grid: np.ndarray, quantize_fn) -> tuple[np.ndarray, ...]:
    """Evaluate local and L2-loss gradients point-by-point for plotting."""
    forward = np.zeros_like(x_grid)
    grad_in = np.zeros_like(x_grid)
    grad_th = np.zeros_like(x_grid)
    loss_grad_in = np.zeros_like(x_grid)
    loss_grad_th = np.zeros_like(x_grid)
    for i, value in enumerate(x_grid):
        # Local gradients: backprop a unit upstream gradient through q alone.
        x = Tensor(np.asarray(float(value)), requires_grad=True)
        out, threshold_param = quantize_fn(x)
        out.backward(np.ones_like(out.data))
        forward[i] = float(out.data)
        grad_in[i] = float(x.grad)
        grad_th[i] = float(threshold_param.grad) if threshold_param.grad is not None else 0.0

        # Overall gradients of L = (q - x)^2 / 2.
        x2 = Tensor(np.asarray(float(value)), requires_grad=True)
        out2, threshold_param2 = quantize_fn(x2)
        diff = out2 - x2
        loss = (diff * diff) * 0.5
        loss.backward(np.ones_like(loss.data))
        loss_grad_in[i] = float(x2.grad)
        loss_grad_th[i] = (float(threshold_param2.grad)
                           if threshold_param2.grad is not None else 0.0)
    return forward, grad_in, grad_th, loss_grad_in, loss_grad_th


def tqt_transfer_curves(threshold: float = 1.0, bits: int = 3, signed: bool = True,
                        x_range: float = 2.0, num_points: int = 401) -> TransferCurves:
    """Figure 1: TQT forward/backward transfer curves at ``b``, raw threshold ``t``."""
    config = QuantConfig(bits=bits, signed=signed)
    x_grid = np.linspace(-x_range if signed else -0.5 * x_range, x_range, num_points)
    log2_t = float(np.log2(threshold))

    def quantize_fn(x: Tensor):
        t = Tensor(np.asarray(log2_t), requires_grad=True)
        return tqt_quantize(x, t, config), t

    curves = _per_point_gradients(x_grid, quantize_fn)
    low, high = clipping_limits(threshold, config)
    return TransferCurves(x_grid, *curves, clip_low=low, clip_high=high)


def fakequant_transfer_curves(clip_min: float = -1.125, clip_max: float = 0.875,
                              bits: int = 3, x_range: float = 2.0,
                              num_points: int = 401) -> TransferCurves:
    """Figure 3: TF FakeQuant transfer curves with clipped threshold gradients.

    The reported threshold gradient is the gradient with respect to the
    ``max`` threshold (the ``min`` gradient is its mirror image); for the
    overall-loss curves the two are summed, matching the figure.
    """
    config = QuantConfig(bits=bits, signed=True, symmetric=False, power_of_2=False)
    x_grid = np.linspace(-x_range, x_range, num_points)

    def quantize_fn(x: Tensor):
        mn = Tensor(np.asarray(clip_min), requires_grad=True)
        mx = Tensor(np.asarray(clip_max), requires_grad=True)
        out = fake_quantize(x, mn, mx, config)
        # Report the max-threshold gradient; attach min's gradient too by
        # summing after backward (handled by the caller through mx.grad +
        # mn.grad — here we return a small wrapper parameter).
        return out, mx

    curves = _per_point_gradients(x_grid, quantize_fn)
    return TransferCurves(x_grid, *curves, clip_low=clip_min, clip_high=clip_max)
