"""Optimizer base class with parameter groups and LR schedules.

The TQT training recipe (Section 5.2) uses *different* hyperparameters for
weights and thresholds — learning rates of 1e-6 vs 1e-2 and different decay
schedules — so parameter groups are first-class here.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..nn import Parameter

__all__ = ["Optimizer", "ParamGroup"]


class ParamGroup:
    """A set of parameters sharing hyperparameters and an LR schedule."""

    def __init__(self, params: Sequence[Parameter], lr: float, schedule=None,
                 name: str = "default", **hyperparams) -> None:
        self.params: list[Parameter] = list(params)
        self.base_lr = float(lr)
        self.schedule = schedule
        self.name = name
        self.hyperparams = dict(hyperparams)

    def learning_rate(self, step: int) -> float:
        if self.schedule is None:
            return self.base_lr
        return self.schedule(self.base_lr, step)


class Optimizer:
    """Base optimizer over one or more parameter groups."""

    def __init__(self, params_or_groups, lr: float, **defaults) -> None:
        if isinstance(params_or_groups, ParamGroup):
            groups = [params_or_groups]
        elif params_or_groups and isinstance(params_or_groups, (list, tuple)) and \
                isinstance(params_or_groups[0], ParamGroup):
            groups = list(params_or_groups)
        else:
            groups = [ParamGroup(list(params_or_groups), lr, **defaults)]
        self.groups: list[ParamGroup] = groups
        self.defaults = defaults
        self.step_count = 0
        # Per-parameter optimizer state keyed by id().
        self.state: dict[int, dict[str, np.ndarray | float]] = {}

    # ------------------------------------------------------------------ #
    def zero_grad(self) -> None:
        for group in self.groups:
            for param in group.params:
                param.zero_grad()

    def parameters(self) -> Iterable[Parameter]:
        for group in self.groups:
            yield from group.params

    def param_state(self, param: Parameter) -> dict:
        return self.state.setdefault(id(param), {})

    def step(self) -> None:
        """Apply one update to every parameter that has a gradient."""
        self.step_count += 1
        for group in self.groups:
            lr = group.learning_rate(self.step_count)
            for param in group.params:
                if param.grad is None or not param.requires_grad:
                    continue
                self._update(param, np.asarray(param.grad), lr, group)

    def _update(self, param: Parameter, grad: np.ndarray, lr: float, group: ParamGroup) -> None:
        raise NotImplementedError
