"""Learning-rate schedules.

The paper decays learning rates "exponentially (with staircase enabled) by a
factor of 0.94 every 3000·(24/N) steps for weights and by a factor of 0.5
every 1000·(24/N) steps for thresholds" (Section 5.2).  The schedules here
are callables ``schedule(base_lr, step) -> lr`` compatible with
:class:`repro.optim.optimizer.ParamGroup`.
"""

from __future__ import annotations

import math

__all__ = [
    "ConstantSchedule",
    "ExponentialDecay",
    "StepDecay",
    "paper_weight_schedule",
    "paper_threshold_schedule",
]


class ConstantSchedule:
    """Always return the base learning rate."""

    def __call__(self, base_lr: float, step: int) -> float:
        return base_lr


class ExponentialDecay:
    """``lr = base_lr * decay_rate ** (step / decay_steps)``.

    With ``staircase=True`` the exponent is floored, matching TensorFlow's
    ``tf.train.exponential_decay`` used in the paper's training recipe.
    """

    def __init__(self, decay_rate: float, decay_steps: int, staircase: bool = True) -> None:
        if decay_steps <= 0:
            raise ValueError("decay_steps must be positive")
        self.decay_rate = float(decay_rate)
        self.decay_steps = int(decay_steps)
        self.staircase = staircase

    def __call__(self, base_lr: float, step: int) -> float:
        exponent = step / self.decay_steps
        if self.staircase:
            exponent = math.floor(exponent)
        return base_lr * (self.decay_rate ** exponent)


class StepDecay:
    """Piecewise-constant decay at explicit step boundaries."""

    def __init__(self, boundaries: list[int], factors: list[float]) -> None:
        if len(boundaries) != len(factors):
            raise ValueError("boundaries and factors must have equal length")
        self.boundaries = list(boundaries)
        self.factors = list(factors)

    def __call__(self, base_lr: float, step: int) -> float:
        lr = base_lr
        for boundary, factor in zip(self.boundaries, self.factors):
            if step >= boundary:
                lr = base_lr * factor
        return lr


def paper_weight_schedule(batch_size: int = 24) -> ExponentialDecay:
    """Weight LR decay from Section 5.2: x0.94 every 3000·(24/N) steps."""
    return ExponentialDecay(decay_rate=0.94, decay_steps=max(1, round(3000 * 24 / batch_size)))


def paper_threshold_schedule(batch_size: int = 24) -> ExponentialDecay:
    """Threshold LR decay from Section 5.2: x0.5 every 1000·(24/N) steps."""
    return ExponentialDecay(decay_rate=0.5, decay_steps=max(1, round(1000 * 24 / batch_size)))
