"""Adam optimizer.

Adam is the paper's recommended optimizer for log-threshold training: its
built-in gradient norming provides the scale invariance analysed in
Appendix B.2, and Appendix C / Table 4 derive the learning-rate and
``beta`` guidelines (``alpha <= 0.1 / sqrt(p)``, ``beta1 >= 1/e``,
``beta2 >= 1 - 0.1/p`` with ``p = 2^(b-1) - 1``).
"""

from __future__ import annotations

import numpy as np

from .optimizer import Optimizer, ParamGroup
from ..nn import Parameter

__all__ = ["Adam"]


class Adam(Optimizer):
    def __init__(self, params, lr: float = 1e-3, beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8, weight_decay: float = 0.0, **kwargs) -> None:
        super().__init__(params, lr, beta1=beta1, beta2=beta2, eps=eps,
                         weight_decay=weight_decay, **kwargs)

    def _update(self, param: Parameter, grad: np.ndarray, lr: float, group: ParamGroup) -> None:
        hp = {**self.defaults, **group.hyperparams}
        beta1, beta2 = hp.get("beta1", 0.9), hp.get("beta2", 0.999)
        eps, weight_decay = hp.get("eps", 1e-8), hp.get("weight_decay", 0.0)
        if weight_decay:
            grad = grad + weight_decay * param.data
        state = self.param_state(param)
        m = state.get("m", np.zeros_like(param.data))
        v = state.get("v", np.zeros_like(param.data))
        t = state.get("t", 0) + 1
        m = beta1 * m + (1.0 - beta1) * grad
        v = beta2 * v + (1.0 - beta2) * grad ** 2
        state["m"], state["v"], state["t"] = m, v, t
        m_hat = m / (1.0 - beta1 ** t)
        v_hat = v / (1.0 - beta2 ** t)
        param.data -= lr * m_hat / (np.sqrt(v_hat) + eps)
