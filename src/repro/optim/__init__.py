"""Optimizers and learning-rate schedules."""

from .optimizer import Optimizer, ParamGroup
from .sgd import SGD, NormedSGD
from .adam import Adam
from .rmsprop import RMSProp
from .schedules import (
    ConstantSchedule,
    ExponentialDecay,
    StepDecay,
    paper_weight_schedule,
    paper_threshold_schedule,
)

__all__ = [
    "Optimizer",
    "ParamGroup",
    "SGD",
    "NormedSGD",
    "Adam",
    "RMSProp",
    "ConstantSchedule",
    "ExponentialDecay",
    "StepDecay",
    "paper_weight_schedule",
    "paper_threshold_schedule",
]
