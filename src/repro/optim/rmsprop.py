"""RMSProp optimizer (mentioned in Appendix B.2 as an Adam alternative)."""

from __future__ import annotations

import numpy as np

from .optimizer import Optimizer, ParamGroup
from ..nn import Parameter

__all__ = ["RMSProp"]


class RMSProp(Optimizer):
    def __init__(self, params, lr: float = 1e-3, rho: float = 0.9, eps: float = 1e-8,
                 weight_decay: float = 0.0, **kwargs) -> None:
        super().__init__(params, lr, rho=rho, eps=eps, weight_decay=weight_decay, **kwargs)

    def _update(self, param: Parameter, grad: np.ndarray, lr: float, group: ParamGroup) -> None:
        hp = {**self.defaults, **group.hyperparams}
        rho, eps = hp.get("rho", 0.9), hp.get("eps", 1e-8)
        weight_decay = hp.get("weight_decay", 0.0)
        if weight_decay:
            grad = grad + weight_decay * param.data
        state = self.param_state(param)
        avg = state.get("avg", np.zeros_like(param.data))
        avg = rho * avg + (1.0 - rho) * grad ** 2
        state["avg"] = avg
        param.data -= lr * grad / (np.sqrt(avg) + eps)
