"""SGD variants, including the normed-gradient SGD of Appendix B.2.

``NormedSGD`` implements equations (17)/(18) of the paper: each gradient is
divided by the square root of a bias-corrected moving average of its squared
magnitude and optionally passed through ``tanh`` to clip it, restoring the
threshold- and input-scale invariance that plain log-threshold gradients
lack.  This is the "Norm Log Grad - SGD" curve of Figure 8.
"""

from __future__ import annotations

import numpy as np

from .optimizer import Optimizer, ParamGroup
from ..nn import Parameter

__all__ = ["SGD", "NormedSGD"]


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0, **kwargs) -> None:
        super().__init__(params, lr, momentum=momentum, weight_decay=weight_decay, **kwargs)

    def _update(self, param: Parameter, grad: np.ndarray, lr: float, group: ParamGroup) -> None:
        momentum = group.hyperparams.get("momentum", self.defaults.get("momentum", 0.0))
        weight_decay = group.hyperparams.get("weight_decay", self.defaults.get("weight_decay", 0.0))
        if weight_decay:
            grad = grad + weight_decay * param.data
        if momentum:
            state = self.param_state(param)
            velocity = state.get("velocity")
            velocity = grad if velocity is None else momentum * velocity + grad
            state["velocity"] = velocity
            grad = velocity
        param.data -= lr * grad


class NormedSGD(Optimizer):
    """SGD over gradients normalized by a bias-corrected moving RMS (Eq. 17–18).

    Parameters
    ----------
    beta: decay of the moving variance estimate ``v_i``.
    clip: if True, wrap the normalized gradient in ``tanh`` (Eq. 18) so single
        updates are bounded by the learning rate.
    eps: numerical floor added inside the square root.
    """

    def __init__(self, params, lr: float = 0.01, beta: float = 0.999,
                 clip: bool = True, eps: float = 1e-12, **kwargs) -> None:
        super().__init__(params, lr, beta=beta, clip=clip, eps=eps, **kwargs)

    def _update(self, param: Parameter, grad: np.ndarray, lr: float, group: ParamGroup) -> None:
        beta = group.hyperparams.get("beta", self.defaults.get("beta", 0.999))
        clip = group.hyperparams.get("clip", self.defaults.get("clip", True))
        eps = group.hyperparams.get("eps", self.defaults.get("eps", 1e-12))
        state = self.param_state(param)
        variance = state.get("variance", np.zeros_like(param.data))
        count = state.get("count", 0) + 1
        variance = beta * variance + (1.0 - beta) * grad ** 2
        state["variance"], state["count"] = variance, count
        corrected = variance / (1.0 - beta ** count)
        normed = grad / (np.sqrt(corrected) + eps)
        if clip:
            normed = np.tanh(normed)
        param.data -= lr * normed
