"""Module and Parameter abstractions, analogous to ``torch.nn.Module``.

A :class:`Module` owns :class:`Parameter` leaves and child modules, and
exposes the traversal / state-dict machinery that the graph tracer
(:mod:`repro.graph`), the quantization passes (:mod:`repro.quant.qmodules`)
and the trainer (:mod:`repro.training`) rely on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from ..autograd import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as a trainable leaf of a module."""

    def __init__(self, data, requires_grad: bool = True, name: str | None = None) -> None:
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=requires_grad, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses define parameters/children as attributes in ``__init__`` and
    implement :meth:`forward`.  Assignment automatically registers
    :class:`Parameter` and :class:`Module` attributes so they are visible to
    :meth:`parameters`, :meth:`named_modules`, ``state_dict`` etc.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # Attribute registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
            self._buffers.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array that is part of the module state
        (e.g. batch-norm running statistics)."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a previously registered buffer in place of the registry."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} is not registered")
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def modules(self) -> list["Module"]:
        return [m for _, m in self.named_modules()]

    def children(self) -> list["Module"]:
        return list(self._modules.values())

    def named_children(self) -> list[tuple[str, "Module"]]:
        return list(self._modules.items())

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}{name}", buf)
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    # ------------------------------------------------------------------ #
    # Mode switching
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # State dict
    # ------------------------------------------------------------------ #
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        state: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[name] = np.asarray(buf).copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = {name: None for name, _ in self.named_buffers()}
        missing = []
        for name, param in own_params.items():
            if name in state:
                if param.data.shape != np.asarray(state[name]).shape:
                    raise ValueError(
                        f"shape mismatch for {name!r}: "
                        f"{param.data.shape} vs {np.asarray(state[name]).shape}"
                    )
                param.data[...] = state[name]
            elif strict:
                missing.append(name)
        # Buffers are restored by walking the module tree again so nested
        # modules update their registered arrays.
        for mod_name, module in self.named_modules():
            for buf_name in list(module._buffers):
                full_name = f"{mod_name}.{buf_name}" if mod_name else buf_name
                if full_name in state:
                    module.set_buffer(buf_name, state[full_name])
                elif strict and full_name in own_buffers:
                    missing.append(full_name)
        if strict and missing:
            raise KeyError(f"missing keys in state dict: {missing}")

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        lines = [f"{type(self).__name__}({self.extra_repr()})"]
        for name, child in self._modules.items():
            child_repr = repr(child).splitlines()
            lines.append(f"  ({name}): {child_repr[0]}")
            lines.extend(f"  {line}" for line in child_repr[1:])
        return "\n".join(lines)
