"""Batch normalization with the training/inference handling the paper requires.

The TQT/Graffitist flow folds batch norms into the preceding convolution
(Section 4.1) and needs three behaviours from this layer:

* batch statistics during training, moving averages during inference;
* the ability to *freeze* moving statistics after convergence
  ("freeze batch norm moving mean and variance updates post convergence");
* exposure of the effective scale/offset so the BN-folding graph transform
  can compute folded weights that are mathematically equivalent.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, sqrt
from .module import Module, Parameter

__all__ = ["BatchNorm2d"]


class BatchNorm2d(Module):
    """Batch normalization over the channel dimension of NCHW tensors."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))
        self.frozen = False  # freeze moving statistics post convergence

    def freeze_statistics(self) -> None:
        """Stop updating running statistics (Section 5.2: freeze after 1 epoch)."""
        self.frozen = True

    def unfreeze_statistics(self) -> None:
        self.frozen = False

    def effective_scale_offset(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(scale, offset)`` such that ``y = scale * x + offset`` at
        inference time.  Used by the BN-folding transform."""
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        scale = self.gamma.data * inv_std
        offset = self.beta.data - self.running_mean * scale
        return scale, offset

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got shape {x.shape}")
        shape = (1, self.num_features, 1, 1)
        if self.training and not self.frozen:
            batch_mean = x.mean(axis=(0, 2, 3), keepdims=True)
            batch_var = x.var(axis=(0, 2, 3), keepdims=True)
            # Update moving averages from the batch statistics.
            self.set_buffer(
                "running_mean",
                (1 - self.momentum) * self.running_mean
                + self.momentum * batch_mean.data.reshape(-1),
            )
            self.set_buffer(
                "running_var",
                (1 - self.momentum) * self.running_var
                + self.momentum * batch_var.data.reshape(-1),
            )
            mean, var = batch_mean, batch_var
        else:
            mean = Tensor(self.running_mean.reshape(shape))
            var = Tensor(self.running_var.reshape(shape))
        normalized = (x - mean) / sqrt(var + self.eps)
        return normalized * self.gamma.reshape(shape) + self.beta.reshape(shape)

    def extra_repr(self) -> str:
        return f"{self.num_features}, eps={self.eps}, momentum={self.momentum}"
