"""Convolutional and fully connected layers."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, conv2d, matmul
from . import init
from .module import Module, Parameter

__all__ = ["Conv2d", "DepthwiseConv2d", "Linear"]

# Layers built without an explicit ``rng`` draw from children of one
# module-level seed sequence.  Spawning a fresh child per layer keeps default
# construction deterministic (per process, in construction order) while
# guaranteeing sibling layers get independent weights — a shared
# ``default_rng(0)`` fallback used to give every default-constructed layer
# identical parameters.
_DEFAULT_SEEDS = np.random.SeedSequence(0)


def _default_rng() -> np.random.Generator:
    return np.random.default_rng(_DEFAULT_SEEDS.spawn(1)[0])


class Conv2d(Module):
    """2-D convolution layer (NCHW).

    Parameters
    ----------
    in_channels, out_channels: channel counts.
    kernel_size, stride, padding: spatial hyperparameters (int or pair).
    groups: convolution groups; ``groups == in_channels`` makes this a
        depthwise convolution (see :class:`DepthwiseConv2d`).
    bias: whether to add a per-output-channel bias.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size, stride=1,
                 padding=0, groups: int = 1, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or _default_rng()
        kh, kw = (kernel_size, kernel_size) if isinstance(kernel_size, int) else kernel_size
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.groups = groups
        fan_in = (in_channels // groups) * kh * kw
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels // groups, kh, kw), fan_in, rng)
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride,
                      padding=self.padding, groups=self.groups)

    def extra_repr(self) -> str:
        return (f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
                f"stride={self.stride}, padding={self.padding}, groups={self.groups}")


class DepthwiseConv2d(Conv2d):
    """Depthwise convolution: one filter per input channel.

    These layers are the focus of the paper's MobileNet discussion
    (Section 6.2): their weights have widely varying per-channel ranges,
    which is exactly what makes per-tensor post-training quantization fail
    and what TQT threshold training fixes.
    """

    def __init__(self, channels: int, kernel_size, stride=1, padding=0, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__(channels, channels, kernel_size, stride=stride, padding=padding,
                         groups=channels, bias=bias, rng=rng)


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or _default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((out_features, in_features), in_features, out_features, rng)
        )
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = matmul(x, self.weight.T)
        if self.bias is not None:
            out = out + self.bias
        return out

    def extra_repr(self) -> str:
        return f"{self.in_features}, {self.out_features}"
