"""Container modules and the structural ops the quantizer cares about.

``Add`` and ``Concat`` are explicit modules (rather than inline arithmetic)
because the Graffitist-style quantization pass needs to recognise them to
apply the Section 4.3 rules: eltwise-add inputs share a merged scale, and
concat is lossless once its inputs share one scale.
"""

from __future__ import annotations

from typing import Sequence

from ..autograd import Tensor, concatenate
from .module import Module

__all__ = ["Sequential", "ModuleList", "Add", "Concat"]


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        if len(modules) == 1 and isinstance(modules[0], (list, tuple)):
            modules = tuple(modules[0])
        for i, module in enumerate(modules):
            setattr(self, str(i), module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x

    def __iter__(self):
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def __len__(self) -> int:
        return len(self._modules)

    def append(self, module: Module) -> "Sequential":
        setattr(self, str(len(self._modules)), module)
        return self


class ModuleList(Module):
    """A list of modules that registers its children for traversal."""

    def __init__(self, modules: Sequence[Module] = ()) -> None:
        super().__init__()
        for i, module in enumerate(modules):
            setattr(self, str(i), module)

    def __iter__(self):
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def __len__(self) -> int:
        return len(self._modules)

    def append(self, module: Module) -> "ModuleList":
        setattr(self, str(len(self._modules)), module)
        return self

    def forward(self, *args, **kwargs):  # pragma: no cover - containers only hold modules
        raise RuntimeError("ModuleList is not callable; iterate over its children")


class Add(Module):
    """Elementwise addition of two branches (residual connections)."""

    def forward(self, a: Tensor, b: Tensor) -> Tensor:
        return a + b


class Concat(Module):
    """Channel concatenation of branches (inception blocks)."""

    def __init__(self, axis: int = 1) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, tensors: Sequence[Tensor]) -> Tensor:
        return concatenate(list(tensors), axis=self.axis)

    def extra_repr(self) -> str:
        return f"axis={self.axis}"
