"""Neural-network layers built on the repro autograd substrate."""

from .module import Module, Parameter
from .conv_layers import Conv2d, DepthwiseConv2d, Linear
from .norm import BatchNorm2d
from .activations import ReLU, ReLU6, LeakyReLU, Sigmoid, Identity
from .pooling import MaxPool2d, AvgPool2d, GlobalAvgPool2d, Flatten
from .containers import Sequential, ModuleList, Add, Concat
from .losses import CrossEntropyLoss, MSELoss, l2_regularization
from . import init

__all__ = [
    "Module",
    "Parameter",
    "Conv2d",
    "DepthwiseConv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "LeakyReLU",
    "Sigmoid",
    "Identity",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Sequential",
    "ModuleList",
    "Add",
    "Concat",
    "CrossEntropyLoss",
    "MSELoss",
    "l2_regularization",
    "init",
]
