"""Weight initialization schemes for the model zoo."""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_normal", "xavier_uniform", "zeros", "ones", "truncated_normal"]


def kaiming_normal(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He-normal initialization suited for ReLU networks."""
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: tuple[int, ...], fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialization."""
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape)


def truncated_normal(shape: tuple[int, ...], std: float, rng: np.random.Generator) -> np.ndarray:
    """Normal samples re-drawn until they fall within two standard deviations."""
    samples = rng.normal(0.0, std, size=shape)
    out_of_range = np.abs(samples) > 2 * std
    while out_of_range.any():
        samples[out_of_range] = rng.normal(0.0, std, size=int(out_of_range.sum()))
        out_of_range = np.abs(samples) > 2 * std
    return samples


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
