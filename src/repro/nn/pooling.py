"""Pooling modules."""

from __future__ import annotations

from ..autograd import Tensor, avg_pool2d, global_avg_pool2d, max_pool2d
from .module import Module

__all__ = ["MaxPool2d", "AvgPool2d", "GlobalAvgPool2d", "Flatten"]


class MaxPool2d(Module):
    def __init__(self, kernel_size=2, stride=None, padding=0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel_size, self.stride, self.padding)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding}"


class AvgPool2d(Module):
    """Average pooling.  The Graffitist flow rewrites these into depthwise
    convolutions with reciprocal weights so they can be quantized like any
    other compute layer (Section 4.1)."""

    def __init__(self, kernel_size=2, stride=None, padding=0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel_size, self.stride, self.padding)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}, padding={self.padding}"


class GlobalAvgPool2d(Module):
    def __init__(self, keepdims: bool = False) -> None:
        super().__init__()
        self.keepdims = keepdims

    def forward(self, x: Tensor) -> Tensor:
        return global_avg_pool2d(x, keepdims=self.keepdims)


class Flatten(Module):
    def __init__(self, start_dim: int = 1) -> None:
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=self.start_dim)
