"""Activation-function modules."""

from __future__ import annotations

from ..autograd import Tensor, leaky_relu, relu, relu6, sigmoid
from .module import Module

__all__ = ["ReLU", "ReLU6", "LeakyReLU", "Sigmoid", "Identity"]


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return relu(x)


class ReLU6(Module):
    """Clipped ReLU used by MobileNets; its implicit upper bound of 6 interacts
    with activation threshold training (an unsigned quantizer is used after it)."""

    def forward(self, x: Tensor) -> Tensor:
        return relu6(x)


class LeakyReLU(Module):
    """Leaky ReLU as used by DarkNet-19; Section 4.3 gives it a dedicated
    quantization topology with a quantized slope multiplier."""

    def __init__(self, negative_slope: float = 0.1) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return leaky_relu(x, self.negative_slope)

    def extra_repr(self) -> str:
        return f"negative_slope={self.negative_slope}"


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return sigmoid(x)


class Identity(Module):
    """No-op module; the identity-splicing graph transform removes these."""

    def forward(self, x: Tensor) -> Tensor:
        return x
