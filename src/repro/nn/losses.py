"""Loss modules."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, cross_entropy, mse_loss
from .module import Module

__all__ = ["CrossEntropyLoss", "MSELoss", "l2_regularization"]


class CrossEntropyLoss(Module):
    """Softmax cross-entropy over integer labels (the paper's training loss)."""

    def forward(self, logits: Tensor, labels: np.ndarray) -> Tensor:
        return cross_entropy(logits, labels)


class MSELoss(Module):
    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        return mse_loss(prediction, target)


def l2_regularization(parameters, weight_decay: float) -> Tensor:
    """Sum of squared parameter norms scaled by ``weight_decay``.

    The paper adds weight regularization (when present in the original model)
    to the weight gradient path only; the trainer applies this selectively.
    """
    total = None
    for param in parameters:
        term = (param * param).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total * weight_decay
