"""Legacy setuptools shim.

All package metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-use-pep517`` in environments without the ``wheel``
package (PEP 660 editable installs build a wheel).
"""
from setuptools import setup

setup()
